/**
 * @file
 * µB: region-compiled firing plans (macro-op fusion, cgra/sim_tables).
 *
 * Three sections:
 *   plan build — cost of SimTables::build (arena layout + fan-out CSR
 *       + chain plan) per region, the price every fresh (region,
 *       backend, config) pays once;
 *   chain shape — static histogram of maximal fused-chain lengths and
 *       the fraction of ops covered by chains of length >= 2;
 *   fused vs unfused — the same regions simulated with fusion on and
 *       off through both engines: identity verdicts plus the plan
 *       observability counters (events elided, macro firings) on
 *       stdout, simulated-cycles/s and speedup on stderr.
 *
 * stdout carries only deterministic content (region shapes, verdicts,
 * plan counters), so the determinism harness can cmp it; wall-clock
 * numbers go to stderr and, with `--json <path>`, to a timing-record
 * file in the same format as the suite benches (tools/perf_report.py
 * reads both).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cgra/batch_sim.hh"
#include "cgra/sim_tables.hh"
#include "cgra/simulator.hh"
#include "harness/run_json.hh"
#include "harness/suite_runner.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "testing/region_gen.hh"
#include "workloads/benchmark_info.hh"
#include "workloads/synthesizer.hh"

using namespace nachos;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Short git revision of the working tree, or "unknown". */
std::string
gitSha()
{
    std::string sha;
    if (FILE *pipe =
            popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64];
        if (fgets(buf, sizeof(buf), pipe))
            sha = buf;
        pclose(pipe);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

struct TimingRow
{
    std::string stage;
    double seconds = 0;
};

bool
sameResult(const SimResult &a, const SimResult &b)
{
    if (a.memCommits.size() != b.memCommits.size())
        return false;
    for (size_t i = 0; i < a.memCommits.size(); ++i) {
        const MemCommit &x = a.memCommits[i];
        const MemCommit &y = b.memCommits[i];
        if (x.op != y.op || x.invocation != y.invocation ||
            x.cycle != y.cycle || x.addr != y.addr ||
            x.forwarded != y.forwarded)
            return false;
    }
    return a.cycles == b.cycles && a.stats.dump() == b.stats.dump() &&
           a.loadValueDigest == b.loadValueDigest &&
           a.memImage == b.memImage && a.criticalOp == b.criticalOp;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    uint64_t repeats = 200;
    uint64_t simRepeats = 24;
    std::string jsonPath = suiteJsonPath(argc, argv);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--repeats" && i + 1 < argc)
            repeats = std::strtoull(argv[++i], nullptr, 10);
        else if (arg == "--sim-repeats" && i + 1 < argc)
            simRepeats = std::strtoull(argv[++i], nullptr, 10);
    }

    std::vector<TimingRow> rows;
    std::cout << "uB: region-compiled firing plans (macro-op fusion)\n\n";

    // Generated regions (adversarial shapes, little fusable compute)
    // plus real suite workloads, whose address arithmetic and
    // reductions carry the single-consumer chains the plan targets.
    const std::vector<uint64_t> seeds = {3, 7, 11, 19, 42, 1337};
    std::vector<Region> regions;
    regions.reserve(seeds.size() + 3);
    for (uint64_t s : seeds)
        regions.push_back(testing::generateRegion(s, {}));
    for (const char *name : {"equake", "mcf181", "fft2d"})
        regions.push_back(synthesizeRegion(benchmarkByName(name)));

    // ---- Section 1: plan build cost ----------------------------------
    const SimConfig base;
    {
        auto t0 = std::chrono::steady_clock::now();
        size_t builds = 0;
        for (uint64_t r = 0; r < repeats; ++r) {
            for (const Region &region : regions) {
                StatSet stats;
                Placement placement(region, base.grid);
                OperandNetwork net(placement, base.net, stats);
                SimTables tables;
                tables.build(region, placement, net);
                ++builds;
            }
        }
        const double sec = secondsSince(t0);
        std::fprintf(stderr,
                     "plan build: %.1f us/region (placement + network "
                     "+ tables, %zu builds)\n",
                     sec * 1e6 / static_cast<double>(builds), builds);
        rows.push_back({"plan-build", sec});
    }

    // ---- Section 2: static chain shape -------------------------------
    // Maximal chains: a head is a chain step no other op links into;
    // its suffix length is the whole fused chain. Histogram over all
    // regions is a pure function of the generator seeds.
    {
        std::map<uint32_t, uint64_t> hist;
        uint64_t chainOps = 0, totalOps = 0;
        for (const Region &region : regions) {
            StatSet stats;
            Placement placement(region, base.grid);
            OperandNetwork net(placement, base.net, stats);
            SimTables tables;
            tables.build(region, placement, net);
            std::vector<uint8_t> interior(region.numOps(), 0);
            for (OpId op = 0; op < region.numOps(); ++op) {
                if (tables.nextInChain[op] != SimTables::kChainEnd)
                    interior[tables.nextInChain[op]] = 1;
            }
            totalOps += region.numOps();
            for (OpId op = 0; op < region.numOps(); ++op) {
                if (!tables.chainStep[op] || interior[op])
                    continue;
                const uint32_t len = tables.chainSuffix[op].len;
                ++hist[len];
                if (len >= 2)
                    chainOps += len;
            }
        }
        std::cout << "chain shape over " << regions.size()
                  << " generated regions (" << totalOps << " ops):\n";
        for (const auto &[len, count] : hist)
            std::cout << "  len " << len << ": " << count
                      << " chain(s)\n";
        std::cout << "  ops inside fused chains (len >= 2): " << chainOps
                  << " / " << totalOps << "\n";
    }

    // ---- Section 3: fused vs unfused ---------------------------------
    SimConfig fused = base;
    fused.invocations = 24;
    fused.recordMemTrace = true;
    SimConfig unfused = fused;
    unfused.fusion = false;

    bool identical = true;
    uint64_t elided = 0, dispatchedFused = 0, dispatchedUnfused = 0;
    uint64_t macroOps = 0, fusedOps = 0, cycles = 0;
    double fusedSec = 0, unfusedSec = 0;
    for (const Region &region : regions) {
        const AliasAnalysisResult analysis = runAliasPipeline(region);
        const MdeSet mdes = insertMdes(region, analysis.matrix);
        for (BackendKind kind :
             {BackendKind::OptLsq, BackendKind::NachosSw,
              BackendKind::Nachos}) {
            // Pooled hierarchy on both sides so the measured delta
            // is the engine's, not construction noise; one untimed
            // run per mode warms the pool, allocator and caches.
            HierarchyPool pool;
            simulate(region, mdes, kind, fused, pool);
            simulate(region, mdes, kind, unfused, pool);
            auto t0 = std::chrono::steady_clock::now();
            SimResult a;
            for (uint64_t r = 0; r < simRepeats; ++r)
                a = simulate(region, mdes, kind, fused, pool);
            fusedSec += secondsSince(t0);

            t0 = std::chrono::steady_clock::now();
            SimResult b;
            for (uint64_t r = 0; r < simRepeats; ++r)
                b = simulate(region, mdes, kind, unfused, pool);
            unfusedSec += secondsSince(t0);

            identical = identical && sameResult(a, b);
            elided += a.planEventsElided;
            dispatchedFused += a.planEventsDispatched;
            dispatchedUnfused += b.planEventsDispatched;
            macroOps += a.planMacroOps;
            fusedOps += a.planFusedOps;
            cycles += a.cycles;

            // Batch engine, one lane per mode: same identity contract.
            BatchSimEngine engine;
            const std::vector<SimResult> pair = engine.run(
                region, mdes,
                {{kind, fused}, {kind, unfused}});
            identical = identical && sameResult(pair[0], pair[1]) &&
                        sameResult(pair[0], a);
        }
    }
    std::cout << "\nfused vs unfused (3 backends, both engines):\n"
              << "  results identical: " << (identical ? "yes" : "NO")
              << "\n  events dispatched: " << dispatchedFused
              << " fused vs " << dispatchedUnfused << " unfused ("
              << elided << " elided)\n"
              << "  macro firings: " << macroOps << " covering "
              << fusedOps << " op executions\n";
    const double spdup = fusedSec > 0 ? unfusedSec / fusedSec : 0.0;
    std::fprintf(stderr,
                 "fused %.2f Mcycles/s, unfused %.2f Mcycles/s, "
                 "speedup %.2fx\n",
                 static_cast<double>(cycles) * 1e-6 *
                     static_cast<double>(simRepeats) / fusedSec,
                 static_cast<double>(cycles) * 1e-6 *
                     static_cast<double>(simRepeats) / unfusedSec,
                 spdup);
    rows.push_back({"sim-fused", fusedSec});
    rows.push_back({"sim-unfused", unfusedSec});
    if (!identical)
        return 1;

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        if (!os)
            NACHOS_FATAL("cannot write timing JSON to '", jsonPath,
                         "'");
        const std::string sha = gitSha();
        bool first = true;
        os << "[";
        for (const TimingRow &row : rows) {
            os << (first ? "" : ",") << "\n  "
               << dumpJson(encodeTimingRecord("sim_plan", row.stage,
                                              row.seconds, 1, sha));
            first = false;
        }
        os << "\n]\n";
    }
    return 0;
}
