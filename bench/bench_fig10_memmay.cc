/**
 * @file
 * Figure 10: %MEM (share of memory operations among all ops) vs %MAY
 * (share of memory ops carrying a MAY label after the full pipeline),
 * ordered by %MAY as in the paper.
 *
 * Paper shape: workloads that speed up or slow down vs OPT-LSQ all
 * have a high %MEM; NACHOS-SW's troubles concentrate where both %MEM
 * and %MAY are high.
 */

#include <algorithm>
#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/suite_runner.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"

using namespace nachos;

namespace {

struct Row
{
    std::string name;
    double memPct;
    double mayPct;
};

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    printHeader(std::cout, "Figure 10",
                "%MEM vs %MAY per workload (sorted by %MAY)");

    ThreadPool pool(suiteThreads(argc, argv));
    std::vector<Row> rows = parallelMap(
        pool, benchmarkSuite(),
        [](const BenchmarkInfo &info, size_t) {
            Region r = synthesizeRegion(info);
            AliasAnalysisResult res = runAliasPipeline(r);
            const double mem_pct =
                100.0 * static_cast<double>(r.numMemOps()) /
                static_cast<double>(r.numOps());

            // %MAY: memory ops involved in at least one MAY pair.
            const AliasMatrix &m = res.matrix;
            std::vector<bool> in_may(m.numMemOps(), false);
            for (uint32_t i = 0; i < m.numMemOps(); ++i) {
                for (uint32_t j = i + 1; j < m.numMemOps(); ++j) {
                    if (m.relevant(i, j) &&
                        m.label(i, j) == AliasLabel::May) {
                        in_may[i] = in_may[j] = true;
                    }
                }
            }
            uint64_t may_ops = 0;
            for (bool b : in_may)
                may_ops += b ? 1 : 0;
            const double may_pct =
                m.numMemOps() == 0
                    ? 0
                    : 100.0 * static_cast<double>(may_ops) /
                          static_cast<double>(m.numMemOps());
            return Row{info.shortName, mem_pct, may_pct};
        });
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.mayPct < b.mayPct;
    });

    TextTable table;
    table.header({"app", "%MEM", "%MAY"});
    for (const Row &row : rows)
        table.row({row.name, fmtDouble(row.memPct, 1),
                   fmtDouble(row.mayPct, 1)});
    table.print(std::cout);
    return 0;
}
