/**
 * @file
 * nachosd serving throughput: an in-process daemon on a Unix-domain
 * socket, driven by 1/4/16 concurrent client connections pipelining
 * small identical jobs. Reports jobs/sec and the daemon's own
 * queue/total latency percentiles per client count — the smoke-level
 * answer to "what does the JSON-lines layer cost on top of the
 * Runner?".
 */

#include <unistd.h>

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "harness/report.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace nachos;

namespace {

constexpr int kJobsPerClient = 8;

JsonValue
smallJob(uint64_t id)
{
    JsonValue run = JsonValue::makeObject();
    run.set("workload", "164.gzip");
    run.set("invocations", 1);
    JsonValue backends = JsonValue::makeArray();
    backends.push("nachos");
    run.set("backends", std::move(backends));
    JsonValue req = requestEnvelope(id, "run");
    req.set("run", std::move(run));
    return req;
}

/** One client: pipeline all jobs, then collect every response. */
bool
driveClient(const std::string &socketPath)
{
    std::string error;
    std::unique_ptr<ServiceClient> client =
        ServiceClient::connectUnix(socketPath, &error);
    if (!client) {
        std::cerr << "connect: " << error << "\n";
        return false;
    }
    for (uint64_t id = 1; id <= kJobsPerClient; ++id)
        if (!client->sendRequest(smallJob(id)))
            return false;
    for (uint64_t id = 1; id <= kJobsPerClient; ++id) {
        std::optional<JsonValue> response = client->waitFor(id);
        const JsonValue *type =
            response ? response->find("type") : nullptr;
        if (!type || !type->isString() || type->str() != "result")
            return false;
    }
    return true;
}

uint64_t
histogramField(const JsonValue &snapshot, const char *histogram,
               const char *field)
{
    const JsonValue *h = snapshot.find("histograms");
    const JsonValue *lat = h ? h->find(histogram) : nullptr;
    const JsonValue *v = lat ? lat->find(field) : nullptr;
    return v && v->isU64() ? v->asU64() : 0;
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader(std::cout, "Service",
                "nachosd throughput: pipelined small jobs (164.gzip, "
                "1 invocation, nachos backend)");

    TextTable table;
    table.header({"clients", "jobs", "wall ms", "jobs/s",
                  "queue p95 us", "total p95 us"});

    for (const int clients : {1, 4, 16}) {
        const std::string socketPath =
            "/tmp/nachos-bench-" + std::to_string(::getpid()) + "-" +
            std::to_string(clients) + ".sock";
        DaemonConfig config;
        config.socketPath = socketPath;
        config.workers = 2;
        config.queueCapacity =
            static_cast<size_t>(clients) * kJobsPerClient;
        Daemon daemon(config);
        std::string error;
        if (!daemon.start(&error)) {
            std::cerr << "nachosd start: " << error << "\n";
            return 1;
        }

        const auto begin = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        std::vector<char> ok(static_cast<size_t>(clients), 0);
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                ok[static_cast<size_t>(c)] = driveClient(socketPath);
            });
        }
        for (std::thread &t : threads)
            t.join();
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - begin)
                .count();
        for (const char good : ok) {
            if (!good) {
                std::cerr << "a client failed; results are invalid\n";
                return 1;
            }
        }

        const JsonValue snapshot = daemon.metricsSnapshot();
        const int jobs = clients * kJobsPerClient;
        table.row({std::to_string(clients), std::to_string(jobs),
                   fmtDouble(wallMs, 1),
                   fmtDouble(jobs / (wallMs / 1e3), 0),
                   std::to_string(histogramField(
                       snapshot, "latency.queueMicros", "p95")),
                   std::to_string(histogramField(
                       snapshot, "latency.totalMicros", "p95"))});
        daemon.drain();
        ::unlink(socketPath.c_str());
    }
    table.print(std::cout);
    return 0;
}
