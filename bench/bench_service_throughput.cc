/**
 * @file
 * nachosd serving throughput: an in-process daemon on a Unix-domain
 * socket, driven by 1/4/16 closed-loop client connections sending
 * small identical jobs through the shared loadgen harness
 * (service/loadgen.hh — the same driver behind nachos_loadgen and
 * bench_service_slo). Reports jobs/sec plus the daemon's own
 * queue/total latency percentiles per client count — the smoke-level
 * answer to "what does the JSON-lines layer cost on top of the
 * Runner?".
 *
 * The daemon runs in its legacy single-lane shape (no coalescing, no
 * region cache) so this stays the A/B baseline the SLO bench compares
 * against.
 */

#include <unistd.h>

#include <iostream>

#include "harness/report.hh"
#include "service/daemon.hh"
#include "service/loadgen.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace nachos;

namespace {

constexpr uint64_t kJobsPerClient = 8;

uint64_t
histogramField(const JsonValue &snapshot, const char *histogram,
               const char *field)
{
    const JsonValue *h = snapshot.find("histograms");
    const JsonValue *lat = h ? h->find(histogram) : nullptr;
    const JsonValue *v = lat ? lat->find(field) : nullptr;
    return v && v->isU64() ? v->asU64() : 0;
}

} // namespace

int
main()
{
    setQuiet(true);
    printHeader(std::cout, "Service",
                "nachosd throughput: small jobs (164.gzip, "
                "1 invocation, nachos backend), legacy single-lane "
                "baseline");

    TextTable table;
    table.header({"clients", "jobs", "wall ms", "jobs/s",
                  "queue p95 us", "total p95 us"});

    for (const unsigned clients : {1u, 4u, 16u}) {
        const std::string socketPath =
            "/tmp/nachos-bench-" + std::to_string(::getpid()) + "-" +
            std::to_string(clients) + ".sock";
        DaemonConfig config;
        config.socketPath = socketPath;
        config.workers = 2;
        config.queueCapacity = clients * kJobsPerClient;
        config.maxBatchLanes = 1;    // PR3-faithful baseline
        config.regionCacheEntries = 0;
        Daemon daemon(config);
        std::string error;
        if (!daemon.start(&error)) {
            std::cerr << "nachosd start: " << error << "\n";
            return 1;
        }

        LoadGenConfig load;
        load.socketPath = socketPath;
        load.clients = clients;
        load.requestsPerClient = kJobsPerClient;
        load.workload = "164.gzip";
        load.invocations = 1;
        load.seed = 1;
        load.backends = {"nachos"};
        LoadGenResult result;
        if (!runLoadGen(load, result, &error)) {
            std::cerr << "loadgen: " << error << "\n";
            return 1;
        }
        if (result.completed != result.sent ||
            result.errors + result.protocolErrors) {
            std::cerr << "a client failed; results are invalid\n";
            return 1;
        }

        const JsonValue snapshot = daemon.metricsSnapshot();
        table.row({std::to_string(clients),
                   std::to_string(result.completed),
                   fmtDouble(result.wallSeconds * 1e3, 1),
                   fmtDouble(result.achievedRps(), 0),
                   std::to_string(histogramField(
                       snapshot, "latency.queueMicros", "p95")),
                   std::to_string(histogramField(
                       snapshot, "latency.totalMicros", "p95"))});
        daemon.drain();
        ::unlink(socketPath.c_str());
    }
    table.print(std::cout);
    return 0;
}
