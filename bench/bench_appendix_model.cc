/**
 * @file
 * Appendix: limits of decentralized checking. Evaluates the paper's
 * analytical model —
 *
 *   TOT_nachos / TOT_lsq = (Pairs_MAY / N) * (E_MAY / E_lsq)
 *
 * with E_MAY = 500 fJ and E_lsq = 3000 fJ (a 6x gap), so pairwise
 * checks win while the average number of MAY aliases per memory op
 * stays below 6 — and cross-checks the analytical crossover against
 * measured per-workload MAY densities.
 *
 * Paper shape: only seven benchmarks exceed a density of 1 (bzip2,
 * soplex, povray, fft, freqmine, sar, histogram), all far below the
 * crossover of 6.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace nachos;

int
main()
{
    setQuiet(true);
    printHeader(std::cout, "Appendix",
                "Decentralized-checking energy model: crossover sweep "
                "+ measured MAY density");

    const double e_may = 500, e_lsq = 3000;
    std::cout << "Analytical sweep (energy ratio = density * "
              << fmtDouble(e_may / e_lsq, 3) << "):\n\n";
    TextTable sweep;
    sweep.header({"MAY aliases per mem op", "NACHOS/LSQ energy",
                  "verdict"});
    for (double density : {0.0, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
        const double ratio = density * e_may / e_lsq;
        sweep.row({fmtDouble(density, 1), fmtDouble(ratio, 2),
                   ratio < 1.0 ? "NACHOS wins" : "LSQ wins"});
    }
    sweep.print(std::cout);
    std::cout << "\nCrossover at density = " << fmtDouble(e_lsq / e_may, 0)
              << " (paper: 6)\n\nMeasured per-workload MAY density:\n\n";

    TextTable table;
    table.header({"app", "MAY pairs", "#MEM", "density", ">1?"});
    int above_one = 0;
    for (const BenchmarkInfo &info : benchmarkSuite()) {
        Region r = synthesizeRegion(info);
        AliasAnalysisResult res = runAliasPipeline(r);
        const uint64_t may = res.final().enforced.may;
        const double n =
            static_cast<double>(std::max<size_t>(r.numMemOps(), 1));
        const double density = static_cast<double>(may) / n;
        above_one += density > 1.0 ? 1 : 0;
        table.row({info.shortName, std::to_string(may),
                   std::to_string(r.numMemOps()),
                   fmtDouble(density, 2), density > 1 ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nWorkloads above density 1: " << above_one
              << " (paper: 7); all must stay below the crossover of "
                 "6 for NACHOS's energy win to hold\n";
    return 0;
}
