/**
 * @file
 * Appendix: limits of decentralized checking. Evaluates the paper's
 * analytical model —
 *
 *   TOT_nachos / TOT_lsq = (Pairs_MAY / N) * (E_MAY / E_lsq)
 *
 * with E_MAY = 500 fJ and E_lsq = 3000 fJ (a 6x gap), so pairwise
 * checks win while the average number of MAY aliases per memory op
 * stays below 6 — and cross-checks the analytical crossover against
 * measured per-workload MAY densities.
 *
 * Paper shape: only seven benchmarks exceed a density of 1 (bzip2,
 * soplex, povray, fft, freqmine, sar, histogram), all far below the
 * crossover of 6.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/suite_runner.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"

using namespace nachos;

namespace {

struct Density
{
    uint64_t may = 0;
    size_t memOps = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    printHeader(std::cout, "Appendix",
                "Decentralized-checking energy model: crossover sweep "
                "+ measured MAY density");

    const double e_may = 500, e_lsq = 3000;
    std::cout << "Analytical sweep (energy ratio = density * "
              << fmtDouble(e_may / e_lsq, 3) << "):\n\n";
    TextTable sweep;
    sweep.header({"MAY aliases per mem op", "NACHOS/LSQ energy",
                  "verdict"});
    for (double density : {0.0, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
        const double ratio = density * e_may / e_lsq;
        sweep.row({fmtDouble(density, 1), fmtDouble(ratio, 2),
                   ratio < 1.0 ? "NACHOS wins" : "LSQ wins"});
    }
    sweep.print(std::cout);
    std::cout << "\nCrossover at density = " << fmtDouble(e_lsq / e_may, 0)
              << " (paper: 6)\n\nMeasured per-workload MAY density:\n\n";

    ThreadPool pool(suiteThreads(argc, argv));
    std::vector<Density> densities = parallelMap(
        pool, benchmarkSuite(),
        [](const BenchmarkInfo &info, size_t) {
            Region r = synthesizeRegion(info);
            AliasAnalysisResult res = runAliasPipeline(r);
            return Density{res.final().enforced.may, r.numMemOps()};
        });

    TextTable table;
    table.header({"app", "MAY pairs", "#MEM", "density", ">1?"});
    int above_one = 0;
    for (size_t i = 0; i < densities.size(); ++i) {
        const BenchmarkInfo &info = benchmarkSuite()[i];
        const uint64_t may = densities[i].may;
        const size_t mem_ops = densities[i].memOps;
        const double n =
            static_cast<double>(std::max<size_t>(mem_ops, 1));
        const double density = static_cast<double>(may) / n;
        above_one += density > 1.0 ? 1 : 0;
        table.row({info.shortName, std::to_string(may),
                   std::to_string(mem_ops),
                   fmtDouble(density, 2), density > 1 ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nWorkloads above density 1: " << above_one
              << " (paper: 7); all must stay below the crossover of "
                 "6 for NACHOS's energy win to hold\n";
    return 0;
}
