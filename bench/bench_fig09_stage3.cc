/**
 * @file
 * Figure 9: effect of Stage-3 redundancy elimination — the fraction of
 * MUST/MAY alias relations still requiring an MDE after reachability
 * simplification, relative to all relations found (top-5 paths).
 *
 * Paper shape: on average 68% of relations are removed (range
 * 40%-84%; fft-2d peaks at 84%).
 */

#include <iostream>

#include "analysis/pipeline.hh"
#include "harness/report.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "workloads/suite.hh"

using namespace nachos;

int
main()
{
    setQuiet(true);
    printHeader(std::cout, "Figure 9",
                "Stage 3: alias relations retained after redundancy "
                "removal (top-5 paths)");

    TextTable table;
    table.header({"app", "relations", "retained", "%removed",
                  "retained MAY", "retained MUST"});
    double removed_sum = 0;
    int counted = 0;
    for (const BenchmarkInfo &info : benchmarkSuite()) {
        uint64_t relations = 0, retained = 0, r_may = 0, r_must = 0;
        for (uint32_t path = 0; path < 5; ++path) {
            SynthesisOptions opts;
            opts.pathIndex = path;
            Region r = synthesizeRegion(info, opts);
            AliasAnalysisResult res = runAliasPipeline(r);
            // Relations found by stages 1+2 (MUST + MAY).
            relations += res.afterStage2.all.may +
                         res.afterStage2.all.must;
            retained += res.afterStage3.enforced.may +
                        res.afterStage3.enforced.must;
            r_may += res.afterStage3.enforced.may;
            r_must += res.afterStage3.enforced.must;
        }
        std::string removed = "-";
        if (relations > 0) {
            double frac = 1.0 - static_cast<double>(retained) /
                                    static_cast<double>(relations);
            removed = fmtPct(frac);
            removed_sum += frac;
            ++counted;
        }
        table.row({info.shortName, std::to_string(relations),
                   std::to_string(retained), removed,
                   std::to_string(r_may), std::to_string(r_must)});
    }
    table.print(std::cout);
    if (counted > 0) {
        std::cout << "\nMean removal across workloads with relations: "
                  << fmtPct(removed_sum / counted)
                  << "   (paper: 68% mean, 40-84% range)\n";
    }
    return 0;
}
