/**
 * @file
 * Figure 9: effect of Stage-3 redundancy elimination — the fraction of
 * MUST/MAY alias relations still requiring an MDE after reachability
 * simplification, relative to all relations found (top-5 paths).
 *
 * Paper shape: on average 68% of relations are removed (range
 * 40%-84%; fft-2d peaks at 84%).
 */

#include <iostream>

#include "analysis/pipeline.hh"
#include "harness/report.hh"
#include "harness/suite_runner.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"
#include "workloads/suite.hh"

using namespace nachos;

namespace {

struct Retention
{
    uint64_t relations = 0;
    uint64_t retained = 0;
    uint64_t rMay = 0;
    uint64_t rMust = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    printHeader(std::cout, "Figure 9",
                "Stage 3: alias relations retained after redundancy "
                "removal (top-5 paths)");

    ThreadPool pool(suiteThreads(argc, argv));
    std::vector<Retention> rows = parallelMap(
        pool, benchmarkSuite(),
        [](const BenchmarkInfo &info, size_t) {
            Retention ret;
            for (uint32_t path = 0; path < 5; ++path) {
                SynthesisOptions opts;
                opts.pathIndex = path;
                Region r = synthesizeRegion(info, opts);
                AliasAnalysisResult res = runAliasPipeline(r);
                // Relations found by stages 1+2 (MUST + MAY).
                ret.relations += res.afterStage2.all.may +
                                 res.afterStage2.all.must;
                ret.retained += res.afterStage3.enforced.may +
                                res.afterStage3.enforced.must;
                ret.rMay += res.afterStage3.enforced.may;
                ret.rMust += res.afterStage3.enforced.must;
            }
            return ret;
        });

    TextTable table;
    table.header({"app", "relations", "retained", "%removed",
                  "retained MAY", "retained MUST"});
    double removed_sum = 0;
    int counted = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        const BenchmarkInfo &info = benchmarkSuite()[i];
        const uint64_t relations = rows[i].relations;
        const uint64_t retained = rows[i].retained;
        const uint64_t r_may = rows[i].rMay;
        const uint64_t r_must = rows[i].rMust;
        std::string removed = "-";
        if (relations > 0) {
            double frac = 1.0 - static_cast<double>(retained) /
                                    static_cast<double>(relations);
            removed = fmtPct(frac);
            removed_sum += frac;
            ++counted;
        }
        table.row({info.shortName, std::to_string(relations),
                   std::to_string(retained), removed,
                   std::to_string(r_may), std::to_string(r_must)});
    }
    table.print(std::cout);
    if (counted > 0) {
        std::cout << "\nMean removal across workloads with relations: "
                  << fmtPct(removed_sum / counted)
                  << "   (paper: 68% mean, 40-84% range)\n";
    }
    return 0;
}
