/**
 * @file
 * Ablation (DESIGN.md): the cost of NACHOS's single-comparator arbiter
 * (§VII "Why decentralized checking?").
 *
 * Part 1 sweeps a synthetic region with one high-fan-in victim (K MAY
 * parents whose addresses all resolve in the same cycle — the paper's
 * "many memory operations fire simultaneously"): at arbiter width 1
 * the victim's issue is delayed ~K cycles; widening the arbiter makes
 * the delay vanish. Part 2 reports the same sweep on the suite's
 * high-fan-in workloads, where other latency usually overlaps it.
 */

#include <iostream>

#include "analysis/pipeline.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/suite_runner.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"
#include "support/logging.hh"
#include "support/table.hh"
#include "support/thread_pool.hh"

using namespace nachos;

namespace {

/** K older loads, one younger store: all pairs MAY via data indices. */
Region
victimRegion(uint32_t k_parents)
{
    RegionBuilder b("victim" + std::to_string(k_parents));
    ObjectId idx = b.object("idx", 1 << 16);
    ObjectId tab = b.object("table", 4096 * 8 + 64);
    OpId idx_load = b.load(b.stream(idx, 8));
    OpId v = b.liveIn();
    for (uint32_t p = 0; p < k_parents; ++p) {
        SymbolId sym = b.opaqueSym("p" + std::to_string(p), idx_load,
                                   4096, 8, 0, 11 + p);
        AddrExpr a = b.at(tab, 0);
        a.terms.push_back({sym, 1});
        a.canonicalize();
        b.load(a, 8);
    }
    SymbolId vs = b.opaqueSym("victim", idx_load, 4096, 8, 0, 7);
    AddrExpr a = b.at(tab, 0);
    a.terms.push_back({vs, 1});
    a.canonicalize();
    b.store(a, v, 8);
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    printHeader(std::cout, "Ablation (synthetic)",
                "One victim store with K simultaneous MAY parents: "
                "cycles/invocation by arbiter width");

    ThreadPool pool(suiteThreads(argc, argv));

    TextTable sweep;
    sweep.header({"K parents", "width=1", "width=8", "width=64",
                  "arbitration delay"});
    const std::vector<uint32_t> parents = {4, 16, 32, 64};
    std::vector<std::vector<std::string>> sweep_rows = parallelMap(
        pool, parents, [](const uint32_t &k, size_t) {
            Region r = victimRegion(k);
            AliasAnalysisResult res = runAliasPipeline(r);
            MdeSet mdes = insertMdes(r, res.matrix);
            std::vector<std::string> row = {std::to_string(k)};
            double w1 = 0, wide = 0;
            for (uint32_t width : {1u, 8u, 64u}) {
                SimConfig cfg;
                cfg.invocations = 200;
                cfg.nachosComparesPerCycle = width;
                SimResult sim =
                    simulate(r, mdes, BackendKind::Nachos, cfg);
                row.push_back(fmtDouble(sim.cyclesPerInvocation, 1));
                if (width == 1)
                    w1 = sim.cyclesPerInvocation;
                wide = sim.cyclesPerInvocation;
            }
            row.push_back(fmtDouble(w1 - wide, 1) + " cyc");
            return row;
        });
    for (const std::vector<std::string> &row : sweep_rows)
        sweep.row(row);
    sweep.print(std::cout);
    std::cout << "\nThe single-comparator delay grows linearly with "
                 "fan-in — the paper's §VII\ncontention mechanism "
                 "(bzip2/sar-pfa pay ~8% for it).\n";

    printHeader(std::cout, "Ablation (suite)",
                "Arbiter width on the high-fan-in workloads");
    TextTable table;
    table.header({"app", "width=1", "width=64", "contention cost"});
    const std::vector<std::string> names = {"bzip2",  "sarpfa",
                                            "povray", "fft2d",
                                            "soplex", "art"};
    std::vector<std::vector<std::string>> suite_rows = parallelMap(
        pool, names, [](const std::string &name, size_t) {
            const BenchmarkInfo &info = benchmarkByName(name);
            Region r = synthesizeRegion(info);
            AliasAnalysisResult res = runAliasPipeline(r);
            MdeSet mdes = insertMdes(r, res.matrix);
            double w1 = 0, wide = 0;
            for (uint32_t width : {1u, 64u}) {
                SimConfig cfg;
                cfg.invocations = info.invocations;
                cfg.nachosComparesPerCycle = width;
                SimResult sim =
                    simulate(r, mdes, BackendKind::Nachos, cfg);
                if (width == 1)
                    w1 = sim.cyclesPerInvocation;
                wide = sim.cyclesPerInvocation;
            }
            return std::vector<std::string>{
                info.shortName, fmtDouble(w1, 1), fmtDouble(wide, 1),
                fmtPct(wide == 0 ? 0 : (w1 - wide) / wide)};
        });
    for (const std::vector<std::string> &row : suite_rows)
        table.row(row);
    table.print(std::cout);
    std::cout << "\nIn full workloads the arbitration largely overlaps "
                 "other latency; the paper\nsaw it surface as "
                 "bzip2/sar-pfa's ~8% slowdown under a more optimistic "
                 "LSQ.\n";
    return 0;
}
