/**
 * @file
 * Figure 15: NACHOS performance vs OPT-LSQ (positive = slowdown,
 * negative = speedup), with NACHOS-SW as a marker per workload.
 *
 * Paper shape to reproduce: 19 workloads within ~2.5% of OPT-LSQ;
 * ~6 workloads speed up 6-70% (load-to-use latency on cache hits);
 * bzip2 and sar-pfa slow down ~8% from MAY fan-in contention at the
 * comparator stations.
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/suite_runner.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace nachos;

int
main(int argc, char **argv)
{
    setQuiet(true);
    printHeader(std::cout, "Figure 15",
                "NACHOS vs OPT-LSQ performance (negative = NACHOS "
                "faster); marker = NACHOS-SW");

    RunRequest req;
    req.batchSim = suiteBatch(argc, argv);
    req.fusion = suiteFusion(argc, argv);
    SuiteRun run =
        runSuite(benchmarkSuite(), req, suiteThreads(argc, argv));

    std::vector<BarEntry> series;
    int close = 0, speedup = 0, slowdown = 0;
    for (size_t i = 0; i < run.outcomes.size(); ++i) {
        const BenchmarkInfo &info = benchmarkSuite()[i];
        const RunOutcome &out = run.outcomes[i];
        const double lsq =
            static_cast<double>(out.lsq->cycles);
        const double hw_delta =
            pctDelta(lsq, static_cast<double>(out.nachos->cycles));
        const double sw_delta =
            pctDelta(lsq, static_cast<double>(out.sw->cycles));
        series.push_back({info.shortName, hw_delta,
                          "sw=" + fmtDouble(sw_delta, 1) + "%"});
        if (hw_delta < -2.5)
            ++speedup;
        else if (hw_delta > 2.5)
            ++slowdown;
        else
            ++close;
    }
    printBars(std::cout, series, "%", 120);
    std::cout << "\nSummary: " << close << " within 2.5% of OPT-LSQ, "
              << speedup << " faster (>2.5%), " << slowdown
              << " slower (>2.5%)\n";
    std::cout << "Paper:   19 within 2.5%, 6 faster by 6-70%, "
                 "bzip2/sar-pfa ~8% slower\n";
    printSuiteTiming(std::cerr, run);
    maybeWriteSuiteTimingJson(suiteJsonPath(argc, argv),
                              benchmarkSuite(), run);
    return 0;
}
