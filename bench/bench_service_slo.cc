/**
 * @file
 * nachosd SLO curve: sustained req/s at a p99 latency bound, before
 * and after the serving-plane rework. Config A is the PR3-faithful
 * baseline (single-lane execution, no region cache — the daemon's
 * legacy mode); config B is the sharded plane with cross-connection
 * bulk batching and the synthesized-region cache. Both are driven by
 * the same closed-loop loadgen (service/loadgen.hh) over 1/4/16/64
 * client connections sending identical bulk jobs (183.equake,
 * 1 invocation, nachos backend).
 *
 * Also measures interactive p99 while a 16-client bulk sweep runs on
 * config B — the per-class rings mean bulk load must not wreck
 * interactive latency.
 *
 * With `--json <path>` the req/s-at-p99 rows are appended to the
 * suite timing-record format (extra `reqps`/`p99Micros` members ride
 * along; tools/perf_report.py renders them as the SLO section).
 * Timing never gates: the exit code only reflects protocol errors.
 */

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "harness/report.hh"
#include "harness/suite_runner.hh"
#include "service/daemon.hh"
#include "service/loadgen.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace nachos;

namespace {

constexpr int kTotalRequests = 128; ///< per (config, client count)

std::string
gitSha()
{
    std::string sha;
    if (FILE *pipe =
            popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64];
        if (fgets(buf, sizeof(buf), pipe))
            sha = buf;
        pclose(pipe);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

DaemonConfig
makeConfig(const std::string &socketPath, bool legacy)
{
    DaemonConfig config;
    config.socketPath = socketPath;
    if (legacy) {
        // PR3 shape: two plain workers off one set of rings, no
        // coalescing, no cache.
        config.workers = 2;
        config.maxBatchLanes = 1;
        config.regionCacheEntries = 0;
    } else {
        config.workers = 4;
        config.maxBatchLanes = 64;
        config.regionCacheEntries = 64;
    }
    config.queueCapacity = 256;
    config.bulkQueueCapacity = 512;
    return config;
}

LoadGenConfig
makeLoad(const std::string &socketPath, unsigned clients,
         uint64_t requestsPerClient, AdmitClass klass)
{
    LoadGenConfig load;
    load.socketPath = socketPath;
    load.clients = clients;
    load.requestsPerClient = requestsPerClient;
    load.workload = "183.equake";
    load.invocations = 1;
    load.seed = 1;
    load.backends = {"nachos"};
    load.klass = klass;
    return load;
}

struct SloPoint
{
    unsigned clients = 0;
    double reqps = 0;
    uint64_t p99Micros = 0;
    bool clean = false; ///< no errors, completed == sent
};

SloPoint
measure(bool legacy, unsigned clients)
{
    const std::string socketPath =
        "/tmp/nachos-slo-" + std::to_string(::getpid()) + "-" +
        (legacy ? "a" : "b") + std::to_string(clients) + ".sock";
    Daemon daemon(makeConfig(socketPath, legacy));
    std::string error;
    SloPoint point;
    point.clients = clients;
    if (!daemon.start(&error)) {
        std::cerr << "nachosd start: " << error << "\n";
        return point;
    }
    const uint64_t perClient =
        std::max<uint64_t>(1, kTotalRequests / clients);
    LoadGenResult result;
    if (!runLoadGen(makeLoad(socketPath, clients, perClient,
                             AdmitClass::Bulk),
                    result, &error)) {
        std::cerr << "loadgen: " << error << "\n";
        daemon.drain();
        return point;
    }
    point.reqps = result.achievedRps();
    point.p99Micros = result.latencyMicros.p99();
    point.clean = result.errors == 0 && result.protocolErrors == 0 &&
                  result.completed == result.sent;
    daemon.drain();
    ::unlink(socketPath.c_str());
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string jsonPath = suiteJsonPath(argc, argv);
    printHeader(std::cout, "Service",
                "nachosd SLO curve: bulk req/s at p99, legacy "
                "single-lane (A) vs sharded+batched+cached (B)");

    bool allClean = true;
    std::vector<JsonValue> rows;
    const std::string sha = gitSha();
    auto pushRow = [&](const std::string &stage, unsigned clients,
                       double wallSeconds, double reqps,
                       uint64_t p99) {
        JsonValue row = JsonValue::makeObject();
        row.set("workload", "service");
        row.set("stage", stage);
        row.set("seconds",
                std::round(wallSeconds * 1e6) / 1e6);
        row.set("threads", static_cast<uint64_t>(clients));
        row.set("git_sha", sha);
        row.set("reqps", std::round(reqps * 10) / 10);
        row.set("p99Micros", p99);
        rows.push_back(std::move(row));
    };

    TextTable table;
    table.header({"clients", "A req/s", "A p99 us", "B req/s",
                  "B p99 us", "speedup"});
    for (const unsigned clients : {1u, 4u, 16u, 64u}) {
        const SloPoint a = measure(true, clients);
        const SloPoint b = measure(false, clients);
        allClean = allClean && a.clean && b.clean;
        table.row({std::to_string(clients), fmtDouble(a.reqps, 1),
                   std::to_string(a.p99Micros), fmtDouble(b.reqps, 1),
                   std::to_string(b.p99Micros),
                   a.reqps > 0 ? fmtDouble(b.reqps / a.reqps, 2) + "x"
                               : "n/a"});
        pushRow("slo-legacy-c" + std::to_string(clients), clients,
                a.reqps > 0 ? kTotalRequests / a.reqps : 0, a.reqps,
                a.p99Micros);
        pushRow("slo-sharded-c" + std::to_string(clients), clients,
                b.reqps > 0 ? kTotalRequests / b.reqps : 0, b.reqps,
                b.p99Micros);
    }
    table.print(std::cout);

    // ---- interactive p99 with and without a concurrent bulk sweep --
    {
        const std::string socketPath =
            "/tmp/nachos-slo-" + std::to_string(::getpid()) +
            "-mix.sock";
        Daemon daemon(makeConfig(socketPath, false));
        std::string error;
        if (!daemon.start(&error)) {
            std::cerr << "nachosd start: " << error << "\n";
            return 1;
        }

        LoadGenResult idle;
        allClean &= runLoadGen(makeLoad(socketPath, 1, 24,
                                        AdmitClass::Interactive),
                               idle, &error);

        LoadGenResult bulk;
        std::thread sweep([&] {
            runLoadGen(makeLoad(socketPath, 16, 12, AdmitClass::Bulk),
                       bulk, nullptr);
        });
        LoadGenResult contended;
        allClean &= runLoadGen(makeLoad(socketPath, 1, 24,
                                        AdmitClass::Interactive),
                               contended, &error);
        sweep.join();
        daemon.drain();
        ::unlink(socketPath.c_str());

        std::cout << "\ninteractive p99: "
                  << idle.latencyMicros.p99() << " us idle, "
                  << contended.latencyMicros.p99()
                  << " us under a 16-client bulk sweep ("
                  << fmtDouble(bulk.achievedRps(), 1)
                  << " bulk req/s alongside)\n";
        pushRow("slo-interactive-idle", 1, idle.wallSeconds,
                idle.achievedRps(), idle.latencyMicros.p99());
        pushRow("slo-interactive-contended", 1,
                contended.wallSeconds, contended.achievedRps(),
                contended.latencyMicros.p99());
        allClean = allClean && idle.completed == idle.sent &&
                   contended.completed == contended.sent &&
                   bulk.completed == bulk.sent;
    }

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        if (!os)
            NACHOS_FATAL("cannot write timing JSON to '", jsonPath,
                         "'");
        bool first = true;
        os << "[";
        for (const JsonValue &row : rows) {
            os << (first ? "" : ",") << "\n  " << dumpJson(row);
            first = false;
        }
        os << "\n]\n";
    }

    std::cout << "\nreport-only timing; exit reflects protocol "
                 "health only\n";
    return allClean ? 0 : 1;
}
