/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths: the
 * alias pipeline, MDE insertion, the cycle simulator, the bloom
 * filter, the comparator station, and the synthesizer.
 */

#include <benchmark/benchmark.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "harness/suite_runner.hh"
#include "lsq/bloom.hh"
#include "mde/inserter.hh"
#include "nachos/may_station.hh"
#include "support/logging.hh"
#include "workloads/suite.hh"

namespace nachos {
namespace {

void
BM_SynthesizeRegion(benchmark::State &state)
{
    setQuiet(true);
    const BenchmarkInfo &info = benchmarkByName("equake");
    for (auto _ : state) {
        Region r = synthesizeRegion(info);
        benchmark::DoNotOptimize(r.numOps());
    }
}
BENCHMARK(BM_SynthesizeRegion);

void
BM_AliasPipeline(benchmark::State &state)
{
    setQuiet(true);
    const BenchmarkInfo &info = benchmarkByName("equake");
    Region r = synthesizeRegion(info);
    for (auto _ : state) {
        AliasAnalysisResult res = runAliasPipeline(r);
        benchmark::DoNotOptimize(res.final().all.total());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(r.numMemOps() * (r.numMemOps() - 1) / 2));
}
BENCHMARK(BM_AliasPipeline);

void
BM_MdeInsertion(benchmark::State &state)
{
    setQuiet(true);
    Region r = synthesizeRegion(benchmarkByName("povray"));
    AliasAnalysisResult res = runAliasPipeline(r);
    for (auto _ : state) {
        MdeSet mdes = insertMdes(r, res.matrix);
        benchmark::DoNotOptimize(mdes.size());
    }
}
BENCHMARK(BM_MdeInsertion);

void
BM_SimulatorInvocation(benchmark::State &state)
{
    setQuiet(true);
    Region r = synthesizeRegion(benchmarkByName("parser"));
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = 16;
    const BackendKind kind =
        static_cast<BackendKind>(state.range(0));
    for (auto _ : state) {
        SimResult sim = simulate(r, mdes, kind, cfg);
        benchmark::DoNotOptimize(sim.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_SimulatorInvocation)
    ->Arg(0)  // OPT-LSQ
    ->Arg(1)  // NACHOS-SW
    ->Arg(2); // NACHOS

void
BM_BloomFilter(benchmark::State &state)
{
    BloomFilter bloom;
    for (uint64_t a = 0; a < 32; ++a)
        bloom.insert(0x1000 + a * 8, 8);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bloom.mayContain(addr, 8));
        addr += 8;
    }
}
BENCHMARK(BM_BloomFilter);

void
BM_SuiteRunner(benchmark::State &state)
{
    setQuiet(true);
    RunRequest req;
    req.invocationsOverride = 4;
    const unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        SuiteRun run = runSuite(benchmarkSuite(), req, threads);
        benchmark::DoNotOptimize(run.outcomes.size());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(benchmarkSuite().size()));
}
BENCHMARK(BM_SuiteRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_MayStationHighFanIn(benchmark::State &state)
{
    const uint32_t parents = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        StatSet stats;
        MayCheckStation station(parents, stats);
        station.ownAddressReady(0x1000, 8, 0);
        for (uint32_t p = 0; p < parents; ++p)
            station.parentAddressArrived(p, 0x2000 + p * 64, 8, 0);
        benchmark::DoNotOptimize(station.allClearCycle());
    }
}
BENCHMARK(BM_MayStationHighFanIn)->Arg(4)->Arg(16)->Arg(64);

} // namespace
} // namespace nachos

BENCHMARK_MAIN();
