/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths: the
 * alias pipeline, MDE insertion, the cycle simulator, the bloom
 * filter, the comparator station, and the synthesizer.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "harness/suite_runner.hh"
#include "ir/builder.hh"
#include "lsq/bloom.hh"
#include "mde/inserter.hh"
#include "mem/hierarchy.hh"
#include "nachos/may_station.hh"
#include "support/event_queue.hh"
#include "support/logging.hh"
#include "workloads/suite.hh"

namespace nachos {
namespace {

void
BM_SynthesizeRegion(benchmark::State &state)
{
    setQuiet(true);
    const BenchmarkInfo &info = benchmarkByName("equake");
    for (auto _ : state) {
        Region r = synthesizeRegion(info);
        benchmark::DoNotOptimize(r.numOps());
    }
}
BENCHMARK(BM_SynthesizeRegion);

void
BM_AliasPipeline(benchmark::State &state)
{
    setQuiet(true);
    const BenchmarkInfo &info = benchmarkByName("equake");
    Region r = synthesizeRegion(info);
    for (auto _ : state) {
        AliasAnalysisResult res = runAliasPipeline(r);
        benchmark::DoNotOptimize(res.final().all.total());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(r.numMemOps() * (r.numMemOps() - 1) / 2));
}
BENCHMARK(BM_AliasPipeline);

void
BM_MdeInsertion(benchmark::State &state)
{
    setQuiet(true);
    Region r = synthesizeRegion(benchmarkByName("povray"));
    AliasAnalysisResult res = runAliasPipeline(r);
    for (auto _ : state) {
        MdeSet mdes = insertMdes(r, res.matrix);
        benchmark::DoNotOptimize(mdes.size());
    }
}
BENCHMARK(BM_MdeInsertion);

void
BM_SimulatorInvocation(benchmark::State &state)
{
    setQuiet(true);
    Region r = synthesizeRegion(benchmarkByName("parser"));
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = 16;
    const BackendKind kind =
        static_cast<BackendKind>(state.range(0));
    for (auto _ : state) {
        SimResult sim = simulate(r, mdes, kind, cfg);
        benchmark::DoNotOptimize(sim.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_SimulatorInvocation)
    ->Arg(0)  // OPT-LSQ
    ->Arg(1)  // NACHOS-SW
    ->Arg(2); // NACHOS

/**
 * Event-queue push/pop throughput: the typed-record CalendarQueue the
 * simulator dispatches from. The schedule pattern mimics the hot path
 * (mixed near-future latencies, occasional DRAM-distance completions).
 */
void
BM_EventQueuePushPop(benchmark::State &state)
{
    struct Ev
    {
        int64_t value;
        uint32_t op;
        uint32_t slot;
    };
    constexpr int kBatch = 64;
    CalendarQueue<Ev> queue;
    uint64_t scheduled = 0;
    for (auto _ : state) {
        Ev ev;
        for (uint32_t i = 0; i < kBatch; ++i) {
            // Latency mix: mesh hops (1-16), L1 (3), DRAM-ish (228).
            const uint64_t lat = (i % 8 == 0) ? 228 : 1 + (i % 16);
            queue.schedule(queue.now() + lat,
                           {static_cast<int64_t>(i), i, 0});
            ++scheduled;
        }
        for (int i = 0; i < kBatch; ++i)
            benchmark::DoNotOptimize(queue.pop(ev));
    }
    state.SetItemsProcessed(static_cast<int64_t>(scheduled));
}
BENCHMARK(BM_EventQueuePushPop);

/**
 * The engine the CalendarQueue replaced: heap-allocated std::function
 * events through a std::priority_queue ordered by (cycle, seq) — kept
 * as the before/after yardstick for the event-engine overhaul.
 */
void
BM_LegacyFunctionQueue(benchmark::State &state)
{
    struct Event
    {
        uint64_t cycle;
        uint64_t seq;
        std::function<void()> fn;
        bool
        operator>(const Event &other) const
        {
            return cycle != other.cycle ? cycle > other.cycle
                                        : seq > other.seq;
        }
    };
    constexpr int kBatch = 64;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue;
    uint64_t seq = 0;
    uint64_t now = 0;
    uint64_t sink = 0;
    uint64_t scheduled = 0;
    for (auto _ : state) {
        for (uint32_t i = 0; i < kBatch; ++i) {
            const uint64_t lat = (i % 8 == 0) ? 228 : 1 + (i % 16);
            const uint64_t value = i;
            queue.push(Event{now + lat, seq++,
                             [&sink, value] { sink += value; }});
            ++scheduled;
        }
        for (int i = 0; i < kBatch; ++i) {
            const Event &top = queue.top();
            now = top.cycle;
            top.fn();
            queue.pop();
        }
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<int64_t>(scheduled));
}
BENCHMARK(BM_LegacyFunctionQueue);

/**
 * Operand fan-out delivery: one producer feeding `range(0)` consumers
 * stresses the precomputed CSR edge tables (vs the former per-delivery
 * users x operand-slots rescan). Items = delivered operands.
 */
void
BM_OperandFanout(benchmark::State &state)
{
    setQuiet(true);
    const uint32_t consumers = static_cast<uint32_t>(state.range(0));
    RegionBuilder b("fanout");
    OpId x = b.liveIn();
    OpId y = b.liveIn();
    for (uint32_t i = 0; i < consumers; ++i)
        b.liveOut(b.iadd(x, y));
    Region r = b.build();
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = 8;
    for (auto _ : state) {
        SimResult sim = simulate(r, mdes, BackendKind::NachosSw, cfg);
        benchmark::DoNotOptimize(sim.cycles);
    }
    // Each invocation delivers 2 operands to every consumer.
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            8 * 2 * consumers);
}
BENCHMARK(BM_OperandFanout)->Arg(16)->Arg(128);

/**
 * Per-invocation state reset: a wide, shallow region re-entered for
 * many invocations is dominated by seedInvocation (arena clears + seed
 * events), the former states_.assign + per-op inputValues.assign path.
 * Items = op-resets.
 */
void
BM_InvocationReset(benchmark::State &state)
{
    setQuiet(true);
    constexpr uint32_t kOps = 256;
    constexpr uint64_t kInvocations = 64;
    RegionBuilder b("reset");
    for (uint32_t i = 0; i < kOps; ++i)
        b.liveOut(b.constant(static_cast<int64_t>(i)));
    Region r = b.build();
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = kInvocations;
    for (auto _ : state) {
        SimResult sim = simulate(r, mdes, BackendKind::NachosSw, cfg);
        benchmark::DoNotOptimize(sim.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(kInvocations) *
                            (2 * kOps));
}
BENCHMARK(BM_InvocationReset);

/**
 * L1 hit streaming: a working set far smaller than the 64 KiB L1,
 * touched line by line — after warm-up every access runs the inlined
 * hit path (handle-cached stats, no hashing, devirtualized chain).
 * Items = timed accesses.
 */
void
BM_MemHitStreaming(benchmark::State &state)
{
    StatSet stats;
    MemoryHierarchy mem{HierarchyConfig{}, stats};
    constexpr uint64_t kLines = 128; // 8 KiB, fits every L1 set
    uint64_t cycle = 0;
    uint64_t accesses = 0;
    for (uint64_t line = 0; line < kLines; ++line)
        mem.timedAccess(line * 64, false, cycle++);
    for (auto _ : state) {
        for (uint64_t line = 0; line < kLines; ++line) {
            benchmark::DoNotOptimize(
                mem.timedAccess(line * 64, (line & 7) == 0, cycle));
            ++cycle;
        }
        accesses += kLines;
    }
    state.SetItemsProcessed(static_cast<int64_t>(accesses));
}
BENCHMARK(BM_MemHitStreaming);

/**
 * Miss streaming: every access touches a new line of an 8 MiB sweep
 * (larger than the LLC), exercising the out-of-line miss path — MSHR
 * allocation, next-level fill, victim choice, writeback of dirtied
 * lines. Items = timed accesses.
 */
void
BM_MemMissStreaming(benchmark::State &state)
{
    StatSet stats;
    MemoryHierarchy mem{HierarchyConfig{}, stats};
    constexpr uint64_t kLines = (8 * 1024 * 1024) / 64;
    uint64_t cycle = 0;
    uint64_t line = 0;
    uint64_t accesses = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem.timedAccess((line % kLines) * 64, (line & 1) == 0,
                            cycle));
        ++line;
        cycle += 4; // keep MSHRs from saturating into stalls only
        ++accesses;
    }
    state.SetItemsProcessed(static_cast<int64_t>(accesses));
}
BENCHMARK(BM_MemMissStreaming);

/**
 * Random mix over a 1 MiB window: hits in L1 and LLC interleave with
 * misses and writebacks, approximating the simulator's real address
 * streams. Items = timed accesses.
 */
void
BM_MemRandomMix(benchmark::State &state)
{
    StatSet stats;
    MemoryHierarchy mem{HierarchyConfig{}, stats};
    constexpr uint64_t kMask = (1 << 20) - 1; // 1 MiB window
    uint64_t x = 0x9e3779b97f4a7c15ull;
    uint64_t cycle = 0;
    uint64_t accesses = 0;
    for (auto _ : state) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        benchmark::DoNotOptimize(
            mem.timedAccess(x & kMask & ~uint64_t{7}, (x & 3) == 0,
                            cycle));
        ++cycle;
        ++accesses;
    }
    state.SetItemsProcessed(static_cast<int64_t>(accesses));
}
BENCHMARK(BM_MemRandomMix);

/**
 * Functional (value) memory read/write mix: word writes then a read
 * stream over half-written pages, so both the memcpy fast path and the
 * background-byte merge path run. Items = operations.
 */
void
BM_FunctionalMemoryMix(benchmark::State &state)
{
    FunctionalMemory fm;
    constexpr uint64_t kWords = 4096; // 32 KiB: 8 pages
    for (uint64_t w = 0; w < kWords; w += 2)
        fm.write(w * 8, 8, static_cast<int64_t>(w));
    uint64_t w = 0;
    uint64_t ops = 0;
    int64_t sink = 0;
    for (auto _ : state) {
        if ((w & 7) == 0)
            fm.write((w % kWords) * 8, 8, static_cast<int64_t>(w));
        else
            sink += fm.read((w % kWords) * 8, 8);
        ++w;
        ++ops;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<int64_t>(ops));
}
BENCHMARK(BM_FunctionalMemoryMix);

/**
 * Hierarchy reset cost after a bounded touch: the epoch-bump cache
 * reset plus the page-bitmap clear must scale with touched state, not
 * with capacity. Items = resets.
 */
void
BM_HierarchyReset(benchmark::State &state)
{
    StatSet stats;
    MemoryHierarchy mem{HierarchyConfig{}, stats};
    uint64_t resets = 0;
    for (auto _ : state) {
        for (uint64_t line = 0; line < 64; ++line) {
            mem.timedAccess(line * 64, true, line);
            mem.data().write(line * 64, 8, static_cast<int64_t>(line));
        }
        mem.reset();
        ++resets;
    }
    state.SetItemsProcessed(static_cast<int64_t>(resets));
}
BENCHMARK(BM_HierarchyReset);

void
BM_BloomFilter(benchmark::State &state)
{
    BloomFilter bloom;
    for (uint64_t a = 0; a < 32; ++a)
        bloom.insert(0x1000 + a * 8, 8);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bloom.mayContain(addr, 8));
        addr += 8;
    }
}
BENCHMARK(BM_BloomFilter);

void
BM_SuiteRunner(benchmark::State &state)
{
    setQuiet(true);
    RunRequest req;
    req.invocationsOverride = 4;
    const unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        SuiteRun run = runSuite(benchmarkSuite(), req, threads);
        benchmark::DoNotOptimize(run.outcomes.size());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(benchmarkSuite().size()));
}
BENCHMARK(BM_SuiteRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_MayStationHighFanIn(benchmark::State &state)
{
    const uint32_t parents = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        StatSet stats;
        MayCheckStation station(parents, stats);
        station.ownAddressReady(0x1000, 8, 0);
        for (uint32_t p = 0; p < parents; ++p)
            station.parentAddressArrived(p, 0x2000 + p * 64, 8, 0);
        benchmark::DoNotOptimize(station.allClearCycle());
    }
}
BENCHMARK(BM_MayStationHighFanIn)->Arg(4)->Arg(16)->Arg(64);

} // namespace
} // namespace nachos

BENCHMARK_MAIN();
