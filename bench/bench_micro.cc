/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths: the
 * alias pipeline, MDE insertion, the cycle simulator, the bloom
 * filter, the comparator station, and the synthesizer.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <queue>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "harness/suite_runner.hh"
#include "ir/builder.hh"
#include "lsq/bloom.hh"
#include "mde/inserter.hh"
#include "nachos/may_station.hh"
#include "support/event_queue.hh"
#include "support/logging.hh"
#include "workloads/suite.hh"

namespace nachos {
namespace {

void
BM_SynthesizeRegion(benchmark::State &state)
{
    setQuiet(true);
    const BenchmarkInfo &info = benchmarkByName("equake");
    for (auto _ : state) {
        Region r = synthesizeRegion(info);
        benchmark::DoNotOptimize(r.numOps());
    }
}
BENCHMARK(BM_SynthesizeRegion);

void
BM_AliasPipeline(benchmark::State &state)
{
    setQuiet(true);
    const BenchmarkInfo &info = benchmarkByName("equake");
    Region r = synthesizeRegion(info);
    for (auto _ : state) {
        AliasAnalysisResult res = runAliasPipeline(r);
        benchmark::DoNotOptimize(res.final().all.total());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(r.numMemOps() * (r.numMemOps() - 1) / 2));
}
BENCHMARK(BM_AliasPipeline);

void
BM_MdeInsertion(benchmark::State &state)
{
    setQuiet(true);
    Region r = synthesizeRegion(benchmarkByName("povray"));
    AliasAnalysisResult res = runAliasPipeline(r);
    for (auto _ : state) {
        MdeSet mdes = insertMdes(r, res.matrix);
        benchmark::DoNotOptimize(mdes.size());
    }
}
BENCHMARK(BM_MdeInsertion);

void
BM_SimulatorInvocation(benchmark::State &state)
{
    setQuiet(true);
    Region r = synthesizeRegion(benchmarkByName("parser"));
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = 16;
    const BackendKind kind =
        static_cast<BackendKind>(state.range(0));
    for (auto _ : state) {
        SimResult sim = simulate(r, mdes, kind, cfg);
        benchmark::DoNotOptimize(sim.cycles);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_SimulatorInvocation)
    ->Arg(0)  // OPT-LSQ
    ->Arg(1)  // NACHOS-SW
    ->Arg(2); // NACHOS

/**
 * Event-queue push/pop throughput: the typed-record CalendarQueue the
 * simulator dispatches from. The schedule pattern mimics the hot path
 * (mixed near-future latencies, occasional DRAM-distance completions).
 */
void
BM_EventQueuePushPop(benchmark::State &state)
{
    struct Ev
    {
        int64_t value;
        uint32_t op;
        uint32_t slot;
    };
    constexpr int kBatch = 64;
    CalendarQueue<Ev> queue;
    uint64_t scheduled = 0;
    for (auto _ : state) {
        Ev ev;
        for (uint32_t i = 0; i < kBatch; ++i) {
            // Latency mix: mesh hops (1-16), L1 (3), DRAM-ish (228).
            const uint64_t lat = (i % 8 == 0) ? 228 : 1 + (i % 16);
            queue.schedule(queue.now() + lat,
                           {static_cast<int64_t>(i), i, 0});
            ++scheduled;
        }
        for (int i = 0; i < kBatch; ++i)
            benchmark::DoNotOptimize(queue.pop(ev));
    }
    state.SetItemsProcessed(static_cast<int64_t>(scheduled));
}
BENCHMARK(BM_EventQueuePushPop);

/**
 * The engine the CalendarQueue replaced: heap-allocated std::function
 * events through a std::priority_queue ordered by (cycle, seq) — kept
 * as the before/after yardstick for the event-engine overhaul.
 */
void
BM_LegacyFunctionQueue(benchmark::State &state)
{
    struct Event
    {
        uint64_t cycle;
        uint64_t seq;
        std::function<void()> fn;
        bool
        operator>(const Event &other) const
        {
            return cycle != other.cycle ? cycle > other.cycle
                                        : seq > other.seq;
        }
    };
    constexpr int kBatch = 64;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue;
    uint64_t seq = 0;
    uint64_t now = 0;
    uint64_t sink = 0;
    uint64_t scheduled = 0;
    for (auto _ : state) {
        for (uint32_t i = 0; i < kBatch; ++i) {
            const uint64_t lat = (i % 8 == 0) ? 228 : 1 + (i % 16);
            const uint64_t value = i;
            queue.push(Event{now + lat, seq++,
                             [&sink, value] { sink += value; }});
            ++scheduled;
        }
        for (int i = 0; i < kBatch; ++i) {
            const Event &top = queue.top();
            now = top.cycle;
            top.fn();
            queue.pop();
        }
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<int64_t>(scheduled));
}
BENCHMARK(BM_LegacyFunctionQueue);

/**
 * Operand fan-out delivery: one producer feeding `range(0)` consumers
 * stresses the precomputed CSR edge tables (vs the former per-delivery
 * users x operand-slots rescan). Items = delivered operands.
 */
void
BM_OperandFanout(benchmark::State &state)
{
    setQuiet(true);
    const uint32_t consumers = static_cast<uint32_t>(state.range(0));
    RegionBuilder b("fanout");
    OpId x = b.liveIn();
    OpId y = b.liveIn();
    for (uint32_t i = 0; i < consumers; ++i)
        b.liveOut(b.iadd(x, y));
    Region r = b.build();
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = 8;
    for (auto _ : state) {
        SimResult sim = simulate(r, mdes, BackendKind::NachosSw, cfg);
        benchmark::DoNotOptimize(sim.cycles);
    }
    // Each invocation delivers 2 operands to every consumer.
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            8 * 2 * consumers);
}
BENCHMARK(BM_OperandFanout)->Arg(16)->Arg(128);

/**
 * Per-invocation state reset: a wide, shallow region re-entered for
 * many invocations is dominated by seedInvocation (arena clears + seed
 * events), the former states_.assign + per-op inputValues.assign path.
 * Items = op-resets.
 */
void
BM_InvocationReset(benchmark::State &state)
{
    setQuiet(true);
    constexpr uint32_t kOps = 256;
    constexpr uint64_t kInvocations = 64;
    RegionBuilder b("reset");
    for (uint32_t i = 0; i < kOps; ++i)
        b.liveOut(b.constant(static_cast<int64_t>(i)));
    Region r = b.build();
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = kInvocations;
    for (auto _ : state) {
        SimResult sim = simulate(r, mdes, BackendKind::NachosSw, cfg);
        benchmark::DoNotOptimize(sim.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(kInvocations) *
                            (2 * kOps));
}
BENCHMARK(BM_InvocationReset);

void
BM_BloomFilter(benchmark::State &state)
{
    BloomFilter bloom;
    for (uint64_t a = 0; a < 32; ++a)
        bloom.insert(0x1000 + a * 8, 8);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bloom.mayContain(addr, 8));
        addr += 8;
    }
}
BENCHMARK(BM_BloomFilter);

void
BM_SuiteRunner(benchmark::State &state)
{
    setQuiet(true);
    RunRequest req;
    req.invocationsOverride = 4;
    const unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        SuiteRun run = runSuite(benchmarkSuite(), req, threads);
        benchmark::DoNotOptimize(run.outcomes.size());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(benchmarkSuite().size()));
}
BENCHMARK(BM_SuiteRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_MayStationHighFanIn(benchmark::State &state)
{
    const uint32_t parents = static_cast<uint32_t>(state.range(0));
    for (auto _ : state) {
        StatSet stats;
        MayCheckStation station(parents, stats);
        station.ownAddressReady(0x1000, 8, 0);
        for (uint32_t p = 0; p < parents; ++p)
            station.parentAddressArrived(p, 0x2000 + p * 64, 8, 0);
        benchmark::DoNotOptimize(station.allClearCycle());
    }
}
BENCHMARK(BM_MayStationHighFanIn)->Arg(4)->Arg(16)->Arg(64);

} // namespace
} // namespace nachos

BENCHMARK_MAIN();
