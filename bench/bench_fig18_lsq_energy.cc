/**
 * @file
 * Figure 18: OPT-LSQ dynamic-energy breakdown (COMPUTE / LSQ-BLOOM /
 * LSQ-CAM / L1) plus the bloom-filter hit-rate table.
 *
 * Paper shape: the optimized LSQ consumes ~27% of total energy
 * (including L1); nine benchmarks have perfect (0-hit) bloom
 * filtering; the high-hit bucket (20%+) contains the store-heavy
 * workloads (bodytrack, fft-2d, freqmine, sar-pfa-interp1,
 * histogram).
 */

#include <iostream>

#include "harness/report.hh"
#include "harness/suite_runner.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace nachos;

int
main(int argc, char **argv)
{
    setQuiet(true);
    printHeader(std::cout, "Figure 18",
                "OPT-LSQ dynamic energy breakdown + bloom hit rates");

    RunRequest req;
    req.runSw = false;
    req.runNachos = false;
    req.batchSim = suiteBatch(argc, argv);
    req.fusion = suiteFusion(argc, argv);
    SuiteRun run =
        runSuite(benchmarkSuite(), req, suiteThreads(argc, argv));

    TextTable table;
    table.header({"app", "%COMPUTE", "%BLOOM", "%CAM", "%L1",
                  "%memops", "bloomHit%", "paper bucket"});
    double lsq_share_sum = 0;
    int zero_bloom = 0;
    for (size_t i = 0; i < run.outcomes.size(); ++i) {
        const BenchmarkInfo &info = benchmarkSuite()[i];
        const RunOutcome &out = run.outcomes[i];
        const EnergyBreakdown &e = out.lsq->energy;
        lsq_share_sum += e.frac(e.lsq());

        const uint64_t probes =
            out.lsq->stats.get("lsq.bloomProbes");
        const uint64_t hits = out.lsq->stats.get("lsq.bloomHits") +
                              out.lsq->stats.get("lsq.camStores");
        const double hit_pct =
            probes == 0 ? 0
                        : 100.0 * static_cast<double>(hits) /
                              static_cast<double>(probes);
        zero_bloom += hits == 0 ? 1 : 0;

        const double mem_pct =
            out.region.numOps() == 0
                ? 0
                : 100.0 *
                      static_cast<double>(out.region.numMemOps()) /
                      static_cast<double>(out.region.numOps());
        table.row({info.shortName, fmtPct(e.frac(e.compute)),
                   fmtPct(e.frac(e.lsqBloom)), fmtPct(e.frac(e.lsqCam)),
                   fmtPct(e.frac(e.l1)), fmtDouble(mem_pct, 0),
                   fmtDouble(hit_pct, 1),
                   bloomClassName(info.bloomClass)});
    }
    table.print(std::cout);
    const double n = static_cast<double>(benchmarkSuite().size());
    std::cout << "\nMean LSQ share of total energy: "
              << fmtPct(lsq_share_sum / n)
              << " (paper: 27%); perfect-bloom workloads: "
              << zero_bloom << " (paper: 9)\n";
    printSuiteTiming(std::cerr, run);
    maybeWriteSuiteTimingJson(suiteJsonPath(argc, argv),
                              benchmarkSuite(), run);
    return 0;
}
