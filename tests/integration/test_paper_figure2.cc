/**
 * The paper's Figure 2 running example, end to end:
 *
 *   1. Store *p   (pointer the compiler cannot resolve)
 *   2. Load  B
 *   3. Store A
 *   4. Load  A
 *   5. Store A
 *   6. Load  C
 *
 * Expected compiler output (Figure 2): op 1 MAY-aliases ops 2..5;
 * ops 3/4/5 MUST-alias each other (3->4 forwards); op 6 aliases
 * nothing. NACHOS checks the MAY edges in hardware; op 6 proceeds
 * fully in parallel under every scheme.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "harness/golden.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"

namespace nachos {
namespace {

struct Figure2
{
    Region region{"fig2"};
    // memIndex of each numbered op (0-based: op k -> index k-1).
};

Region
buildFigure2()
{
    RegionBuilder b("figure2");
    ObjectId obj_a = b.object("A", 4096);
    ObjectId obj_b = b.object("B", 4096);
    // C is a region-private buffer: the compiler proves op 6 aliases
    // nothing, exactly as the figure shows (Alias(1,6)? NO).
    ObjectId obj_c = b.object("C", 4096, ObjectKind::Heap,
                              DataType::I64, /*escapes=*/false);
    // *p actually points into B (so the MAY vs op 2 is a real
    // conflict and the MAYs vs A's ops are false alarms).
    ParamId p = b.pointerParam("p", obj_b, 0);

    OpId v = b.liveIn();
    b.store(b.atParam(p, 0), v);   // 1. Store *p
    OpId ld_b = b.load(b.at(obj_b, 0));  // 2. Load B
    b.store(b.at(obj_a, 0), v);    // 3. Store A
    OpId ld_a = b.load(b.at(obj_a, 0));  // 4. Load A
    OpId sum = b.iadd(ld_b, ld_a);
    b.store(b.at(obj_a, 0), sum);  // 5. Store A
    OpId ld_c = b.load(b.at(obj_c, 0));  // 6. Load C
    b.liveOut(ld_c);
    return b.build();
}

TEST(PaperFigure2, CompilerLabelsMatchTheFigure)
{
    Region r = buildFigure2();
    AliasAnalysisResult res = runAliasPipeline(r);
    const AliasMatrix &m = res.matrix;
    ASSERT_EQ(m.numMemOps(), 6u);

    // Alias(1, 2..5) ? MAY (the unresolved pointer).
    for (uint32_t j : {1u, 2u, 3u, 4u}) {
        EXPECT_EQ(m.label(0, j), AliasLabel::May) << "pair (1," << j + 1
                                                  << ")";
    }
    // Alias(3,4) ? MUST; 3/4/5 all MUST with each other.
    EXPECT_EQ(m.relation(2, 3), PairRelation::MustExact);
    EXPECT_EQ(m.relation(2, 4), PairRelation::MustExact);
    EXPECT_EQ(m.relation(3, 4), PairRelation::MustExact);
    // Alias(1,6) ? NO — op 6 aliases nothing.
    for (uint32_t i : {0u, 1u, 2u, 3u, 4u})
        EXPECT_EQ(m.label(i, 5), AliasLabel::No) << "pair (" << i + 1
                                                 << ",6)";
}

TEST(PaperFigure2, MdesMatchTheNachosColumn)
{
    Region r = buildFigure2();
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    const auto &mem = r.memOps();

    // 3 -> 4 is the FORWARD edge of the figure.
    EXPECT_TRUE(mdes.hasForwardSource(mem[3]));
    EXPECT_EQ(mdes.forwardSource(mem[3]), mem[2]);

    // Figure 8's point: op 5's data consumes op 4's load, so the
    // 4 -> 5 ordering is implicit in the dataflow and needs no edge.
    // The 3 -> 5 WAW pair, however, keeps an explicit ORDER edge:
    // the only path from 3 to 5 runs through the 3 -(FORWARD)-> 4
    // value edge, and a forward hands op 4 the store's data WITHOUT
    // waiting for op 3's memory write — dropping the edge would let
    // op 5's store overtake op 3's (found by differential fuzzing,
    // see DESIGN.md on the verification subsystem).
    bool edge_3_5 = false, edge_4_5 = false;
    for (const Mde &e : mdes.edges()) {
        if (e.older == mem[2] && e.younger == mem[4])
            edge_3_5 = true;
        if (e.older == mem[3] && e.younger == mem[4])
            edge_4_5 = true;
    }
    EXPECT_TRUE(edge_3_5);
    EXPECT_FALSE(edge_4_5);

    // Op 1 carries MAY edges to the younger ops; op 6 has none at all.
    auto fanins = mdes.mayFanIns(r);
    EXPECT_EQ(fanins[5], 0u);
    uint64_t may_from_1 = 0;
    for (uint32_t idx : mdes.outgoing(mem[0]))
        may_from_1 += mdes.edge(idx).kind == MdeKind::May ? 1 : 0;
    EXPECT_GE(may_from_1, 3u);
}

TEST(PaperFigure2, NachosChecksFindTheOneRealConflict)
{
    Region r = buildFigure2();
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = 4;
    SimResult hw = simulate(r, mdes, BackendKind::Nachos, cfg);

    // *p == &B: exactly the op-2 check conflicts; the A-side checks
    // clear and proceed in parallel.
    EXPECT_GT(hw.stats.get("nachos.checksClear"), 0u);
    EXPECT_GT(hw.stats.get("nachos.checksConflict") +
                  hw.stats.get("nachos.runtimeForwards"),
              0u);

    // And the figure's bottom line: all three schemes agree with
    // program order.
    GoldenResult golden = goldenExecute(r, 4);
    for (BackendKind kind : {BackendKind::OptLsq, BackendKind::NachosSw,
                             BackendKind::Nachos}) {
        SimResult sim = simulate(r, mdes, kind, cfg);
        EXPECT_EQ(sim.loadValueDigest, golden.loadValueDigest)
            << backendName(kind);
        EXPECT_EQ(sim.memImage, golden.memImage) << backendName(kind);
    }
}

TEST(PaperFigure2, SwSerializesWhatNachosParallelizes)
{
    Region r = buildFigure2();
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = 16;
    SimResult sw = simulate(r, mdes, BackendKind::NachosSw, cfg);
    SimResult hw = simulate(r, mdes, BackendKind::Nachos, cfg);
    EXPECT_LE(hw.cycles, sw.cycles);
}

} // namespace
} // namespace nachos
