/**
 * Paper-shape regression tests: the qualitative results recorded in
 * EXPERIMENTS.md, encoded as assertions so a future change that breaks
 * a reproduced trend fails CI rather than silently drifting. Each test
 * names the paper artifact it guards. Workload subsets run through the
 * parallel suite runner, so these tests double as an exercise of the
 * fan-out path the bench binaries use.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "harness/suite_runner.hh"
#include "mde/inserter.hh"

namespace nachos {
namespace {

/** Run the named workloads through runSuite on a few workers. */
std::vector<RunOutcome>
runNamed(const std::vector<std::string> &names,
         const RunRequest &req = {})
{
    std::vector<BenchmarkInfo> subset;
    subset.reserve(names.size());
    for (const std::string &name : names)
        subset.push_back(benchmarkByName(name));
    return runSuite(subset, req, 2).outcomes;
}

TEST(PaperShape, Fig11_SwSerializationCripplesIrregularWorkloads)
{
    // §VI: MAY-heavy workloads slow down substantially under the
    // software-only scheme.
    const std::vector<std::string> names = {"bzip2", "histogram",
                                            "sarpfa"};
    RunRequest req;
    req.runNachos = false;
    std::vector<RunOutcome> outs = runNamed(names, req);
    for (size_t i = 0; i < names.size(); ++i) {
        const double delta =
            pctDelta(static_cast<double>(outs[i].lsq->cycles),
                     static_cast<double>(outs[i].sw->cycles));
        EXPECT_GT(delta, 15.0) << names[i];
    }
}

TEST(PaperShape, Fig11_LoadLatencyWorkloadsBeatTheLsq)
{
    // §VI: h264ref/equake/namd-style workloads are faster without the
    // LSQ's load-to-use tax.
    const std::vector<std::string> names = {"h264ref", "equake",
                                            "namd", "lbm"};
    RunRequest req;
    req.runNachos = false;
    std::vector<RunOutcome> outs = runNamed(names, req);
    for (size_t i = 0; i < names.size(); ++i)
        EXPECT_LT(outs[i].sw->cycles, outs[i].lsq->cycles)
            << names[i];
}

TEST(PaperShape, Fig15_NachosRecoversWhatSwSerializes)
{
    // §VIII-A: NACHOS parallelizes the MAY pairs NACHOS-SW serialized
    // and lands near (or past) OPT-LSQ.
    const std::vector<std::string> names = {"bzip2", "histogram",
                                            "povray", "fft2d"};
    std::vector<RunOutcome> outs = runNamed(names);
    for (size_t i = 0; i < names.size(); ++i) {
        EXPECT_LT(outs[i].nachos->cycles, outs[i].sw->cycles)
            << names[i];
        const double vs_lsq =
            pctDelta(static_cast<double>(outs[i].lsq->cycles),
                     static_cast<double>(outs[i].nachos->cycles));
        EXPECT_LT(vs_lsq, 10.0) << names[i]; // within/below LSQ band
    }
}

TEST(PaperShape, Fig15_CertainWorkloadsMatchAcrossSchemes)
{
    // 15+ workloads where the compiler resolves everything: SW and
    // NACHOS behave identically (no checks to run).
    const std::vector<std::string> names = {"gzip", "sjeng", "equake",
                                            "dwt53"};
    std::vector<RunOutcome> outs = runNamed(names);
    for (size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(outs[i].nachos->cycles, outs[i].sw->cycles)
            << names[i];
        EXPECT_EQ(outs[i].nachos->stats.get("mde.mayChecks"), 0u)
            << names[i];
    }
}

TEST(PaperShape, Fig17_NachosSavesEnergyOnEveryWorkload)
{
    // §VIII-B: 21% average savings, 12-40% range; at minimum NACHOS
    // must never cost more than OPT-LSQ.
    const std::vector<std::string> names = {
        "gzip", "equake", "bzip2", "histogram", "povray", "sphinx3"};
    RunRequest req;
    req.runSw = false;
    std::vector<RunOutcome> outs = runNamed(names, req);
    for (size_t i = 0; i < names.size(); ++i)
        EXPECT_LT(outs[i].nachos->energy.total(),
                  outs[i].lsq->energy.total())
            << names[i];
}

TEST(PaperShape, Fig17_MdeShareFarBelowLsqShare)
{
    // The pay-as-you-go claim: MDE energy is a small fraction of what
    // the LSQ would spend on the same workload.
    const std::vector<std::string> names = {"bzip2", "povray",
                                            "fft2d"};
    RunRequest req;
    req.runSw = false;
    std::vector<RunOutcome> outs = runNamed(names, req);
    for (size_t i = 0; i < names.size(); ++i)
        EXPECT_LT(outs[i].nachos->energy.mde,
                  outs[i].lsq->energy.lsq() * 0.75)
            << names[i];
}

TEST(PaperShape, Fig18_BloomBucketsOrderedLikeThePaper)
{
    // Figure 18's table: zero-bucket workloads probe-miss everything;
    // the 20+ bucket workloads hit substantially.
    RunRequest req;
    req.runSw = false;
    req.runNachos = false;
    std::vector<RunOutcome> outs =
        runNamed({"gzip", "sphinx3", "bodytrack"}, req);

    auto hit_rate = [&outs](size_t i) {
        const double probes = static_cast<double>(
            outs[i].lsq->stats.get("lsq.bloomProbes"));
        const double hits = static_cast<double>(
            outs[i].lsq->stats.get("lsq.bloomHits"));
        return probes == 0 ? 0.0 : hits / probes;
    };
    EXPECT_LT(hit_rate(0), 0.01); // gzip
    EXPECT_LT(hit_rate(1), 0.01); // sphinx3
    EXPECT_GT(hit_rate(2), 0.10); // bodytrack
}

TEST(PaperShape, Appendix_DensityStaysBelowCrossover)
{
    // The appendix argument: every workload's MAY density must stay
    // under E_lsq / E_MAY = 6 for decentralized checking to win.
    for (const BenchmarkInfo &info : benchmarkSuite()) {
        Region r = synthesizeRegion(info);
        AliasAnalysisResult res = runAliasPipeline(r);
        const double density =
            static_cast<double>(res.final().enforced.may) /
            static_cast<double>(std::max<size_t>(r.numMemOps(), 1));
        EXPECT_LT(density, 6.0) << info.shortName;
    }
}

TEST(PaperShape, ScopeStudy_TwelveWorkloadsGrow)
{
    int grew = 0;
    for (const BenchmarkInfo &info : benchmarkSuite())
        grew += info.parentContextOps > 0 ? 1 : 0;
    EXPECT_EQ(grew, 12); // §IV-A: 12 of 27 benchmarks
}

} // namespace
} // namespace nachos
