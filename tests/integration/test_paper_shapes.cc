/**
 * Paper-shape regression tests: the qualitative results recorded in
 * EXPERIMENTS.md, encoded as assertions so a future change that breaks
 * a reproduced trend fails CI rather than silently drifting. Each test
 * names the paper artifact it guards.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "harness/runner.hh"
#include "mde/inserter.hh"

namespace nachos {
namespace {

RunOutcome
runFull(const char *name)
{
    return runWorkload(benchmarkByName(name));
}

TEST(PaperShape, Fig11_SwSerializationCripplesIrregularWorkloads)
{
    // §VI: MAY-heavy workloads slow down substantially under the
    // software-only scheme.
    for (const char *name : {"bzip2", "histogram", "sarpfa"}) {
        RunRequest req;
        req.runNachos = false;
        RunOutcome out = runWorkload(benchmarkByName(name), req);
        const double delta =
            pctDelta(static_cast<double>(out.lsq->cycles),
                     static_cast<double>(out.sw->cycles));
        EXPECT_GT(delta, 15.0) << name;
    }
}

TEST(PaperShape, Fig11_LoadLatencyWorkloadsBeatTheLsq)
{
    // §VI: h264ref/equake/namd-style workloads are faster without the
    // LSQ's load-to-use tax.
    for (const char *name : {"h264ref", "equake", "namd", "lbm"}) {
        RunRequest req;
        req.runNachos = false;
        RunOutcome out = runWorkload(benchmarkByName(name), req);
        EXPECT_LT(out.sw->cycles, out.lsq->cycles) << name;
    }
}

TEST(PaperShape, Fig15_NachosRecoversWhatSwSerializes)
{
    // §VIII-A: NACHOS parallelizes the MAY pairs NACHOS-SW serialized
    // and lands near (or past) OPT-LSQ.
    for (const char *name : {"bzip2", "histogram", "povray", "fft2d"}) {
        RunOutcome out = runFull(name);
        EXPECT_LT(out.nachos->cycles, out.sw->cycles) << name;
        const double vs_lsq =
            pctDelta(static_cast<double>(out.lsq->cycles),
                     static_cast<double>(out.nachos->cycles));
        EXPECT_LT(vs_lsq, 10.0) << name; // within/below the LSQ band
    }
}

TEST(PaperShape, Fig15_CertainWorkloadsMatchAcrossSchemes)
{
    // 15+ workloads where the compiler resolves everything: SW and
    // NACHOS behave identically (no checks to run).
    for (const char *name : {"gzip", "sjeng", "equake", "dwt53"}) {
        RunOutcome out = runFull(name);
        EXPECT_EQ(out.nachos->cycles, out.sw->cycles) << name;
        EXPECT_EQ(out.nachos->stats.get("mde.mayChecks"), 0u) << name;
    }
}

TEST(PaperShape, Fig17_NachosSavesEnergyOnEveryWorkload)
{
    // §VIII-B: 21% average savings, 12-40% range; at minimum NACHOS
    // must never cost more than OPT-LSQ.
    for (const char *name : {"gzip", "equake", "bzip2", "histogram",
                             "povray", "sphinx3"}) {
        RunRequest req;
        req.runSw = false;
        RunOutcome out = runWorkload(benchmarkByName(name), req);
        EXPECT_LT(out.nachos->energy.total(), out.lsq->energy.total())
            << name;
    }
}

TEST(PaperShape, Fig17_MdeShareFarBelowLsqShare)
{
    // The pay-as-you-go claim: MDE energy is a small fraction of what
    // the LSQ would spend on the same workload.
    for (const char *name : {"bzip2", "povray", "fft2d"}) {
        RunRequest req;
        req.runSw = false;
        RunOutcome out = runWorkload(benchmarkByName(name), req);
        EXPECT_LT(out.nachos->energy.mde,
                  out.lsq->energy.lsq() * 0.75)
            << name;
    }
}

TEST(PaperShape, Fig18_BloomBucketsOrderedLikeThePaper)
{
    // Figure 18's table: zero-bucket workloads probe-miss everything;
    // the 20+ bucket workloads hit substantially.
    RunRequest req;
    req.runSw = false;
    req.runNachos = false;

    auto hit_rate = [&](const char *name) {
        RunOutcome out = runWorkload(benchmarkByName(name), req);
        const double probes = static_cast<double>(
            out.lsq->stats.get("lsq.bloomProbes"));
        const double hits = static_cast<double>(
            out.lsq->stats.get("lsq.bloomHits"));
        return probes == 0 ? 0.0 : hits / probes;
    };
    EXPECT_LT(hit_rate("gzip"), 0.01);
    EXPECT_LT(hit_rate("sphinx3"), 0.01);
    EXPECT_GT(hit_rate("bodytrack"), 0.10);
}

TEST(PaperShape, Appendix_DensityStaysBelowCrossover)
{
    // The appendix argument: every workload's MAY density must stay
    // under E_lsq / E_MAY = 6 for decentralized checking to win.
    for (const BenchmarkInfo &info : benchmarkSuite()) {
        Region r = synthesizeRegion(info);
        AliasAnalysisResult res = runAliasPipeline(r);
        const double density =
            static_cast<double>(res.final().enforced.may) /
            static_cast<double>(std::max<size_t>(r.numMemOps(), 1));
        EXPECT_LT(density, 6.0) << info.shortName;
    }
}

TEST(PaperShape, ScopeStudy_TwelveWorkloadsGrow)
{
    int grew = 0;
    for (const BenchmarkInfo &info : benchmarkSuite())
        grew += info.parentContextOps > 0 ? 1 : 0;
    EXPECT_EQ(grew, 12); // §IV-A: 12 of 27 benchmarks
}

} // namespace
} // namespace nachos
