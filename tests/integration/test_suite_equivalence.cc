/**
 * Integration sweep: the full flow (synthesize -> analyze -> insert
 * MDEs -> simulate) must keep the three ordering backends functionally
 * identical on every one of the 27 paper workloads, at several path
 * scales and under both the full and the baseline pipeline.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "mde/inserter.hh"
#include "workloads/suite.hh"

namespace nachos {
namespace {

class SuiteEquivalence : public ::testing::TestWithParam<size_t>
{};

void
checkEquivalent(const Region &region, const PipelineConfig &pipeline,
                uint64_t invocations, const char *what)
{
    AliasAnalysisResult analysis = runAliasPipeline(region, pipeline);
    MdeSet mdes = insertMdes(region, analysis.matrix);
    SimConfig cfg;
    cfg.invocations = invocations;
    SimResult lsq = simulate(region, mdes, BackendKind::OptLsq, cfg);
    SimResult sw = simulate(region, mdes, BackendKind::NachosSw, cfg);
    SimResult hw = simulate(region, mdes, BackendKind::Nachos, cfg);
    EXPECT_EQ(lsq.loadValueDigest, sw.loadValueDigest)
        << region.name() << " " << what;
    EXPECT_EQ(sw.loadValueDigest, hw.loadValueDigest)
        << region.name() << " " << what;
    EXPECT_EQ(lsq.memImage, hw.memImage) << region.name() << " "
                                         << what;
}

TEST_P(SuiteEquivalence, FullPipelineHottestPath)
{
    const BenchmarkInfo &info = benchmarkSuite()[GetParam()];
    Region r = synthesizeRegion(info);
    checkEquivalent(r, PipelineConfig{}, 8, "full/path0");
}

TEST_P(SuiteEquivalence, BaselineCompilerHottestPath)
{
    const BenchmarkInfo &info = benchmarkSuite()[GetParam()];
    Region r = synthesizeRegion(info);
    checkEquivalent(r, PipelineConfig::baselineCompiler(), 6,
                    "baseline/path0");
}

TEST_P(SuiteEquivalence, FullPipelineColdestPath)
{
    const BenchmarkInfo &info = benchmarkSuite()[GetParam()];
    SynthesisOptions opts;
    opts.pathIndex = 4;
    Region r = synthesizeRegion(info, opts);
    checkEquivalent(r, PipelineConfig{}, 6, "full/path4");
}

INSTANTIATE_TEST_SUITE_P(All27, SuiteEquivalence,
                         ::testing::Range(size_t{0}, size_t{27}));

TEST(SuiteDeterminism, RepeatedRunsIdentical)
{
    const BenchmarkInfo &info = benchmarkByName("povray");
    Region r1 = synthesizeRegion(info);
    Region r2 = synthesizeRegion(info);
    AliasAnalysisResult a1 = runAliasPipeline(r1);
    AliasAnalysisResult a2 = runAliasPipeline(r2);
    MdeSet m1 = insertMdes(r1, a1.matrix);
    MdeSet m2 = insertMdes(r2, a2.matrix);
    ASSERT_EQ(m1.size(), m2.size());

    SimConfig cfg;
    cfg.invocations = 10;
    SimResult s1 = simulate(r1, m1, BackendKind::Nachos, cfg);
    SimResult s2 = simulate(r2, m2, BackendKind::Nachos, cfg);
    EXPECT_EQ(s1.cycles, s2.cycles);
    EXPECT_EQ(s1.loadValueDigest, s2.loadValueDigest);
    EXPECT_EQ(s1.stats.get("mde.mayChecks"),
              s2.stats.get("mde.mayChecks"));
}

TEST(SuiteMlp, MeasuredMlpTracksDescriptors)
{
    // Spot-check that the wave structure bounds concurrency near the
    // Table II MLP targets for representative workloads.
    for (const char *name : {"gzip", "equake", "sphinx3"}) {
        const BenchmarkInfo &info = benchmarkByName(name);
        Region r = synthesizeRegion(info);
        AliasAnalysisResult analysis = runAliasPipeline(r);
        MdeSet mdes = insertMdes(r, analysis.matrix);
        SimConfig cfg;
        cfg.invocations = 16;
        SimResult res = simulate(r, mdes, BackendKind::OptLsq, cfg);
        if (info.memOps == 0) {
            EXPECT_EQ(res.maxMlp, 0u) << name;
        } else {
            EXPECT_GE(res.maxMlp, info.mlp / 2) << name;
            EXPECT_LE(res.maxMlp, info.mlp * 2 + 4) << name;
        }
    }
}

} // namespace
} // namespace nachos
