/**
 * Design-space sweep subsystem: spec decoding and deterministic
 * expansion (constraint and geometry filtering, coordinate-derived
 * point ids), the append-only store's resume semantics (torn-tail
 * truncation, duplicate detection), Pareto/report determinism, and
 * the in-process orchestrator's skip-completed resume loop.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sweep/orchestrator.hh"
#include "sweep/report.hh"

namespace nachos {
namespace {

JsonValue
mustParse(const std::string &text)
{
    JsonParseResult parsed = parseJson(text);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return std::move(parsed.value);
}

SweepSpec
mustDecode(const std::string &text)
{
    SweepSpec spec;
    CodecError err;
    const bool ok = decodeSweepSpec(mustParse(text), spec, err);
    EXPECT_TRUE(ok) << "[" << err.code << "] " << err.message;
    return spec;
}

/** A fresh temp-store path; any previous run's file is removed. */
std::string
tempStore(const std::string &name)
{
    const std::string path =
        ::testing::TempDir() + "nachos_test_sweep_" + name + ".jsonl";
    std::remove(path.c_str());
    return path;
}

// ---- spec decode + expansion -------------------------------------

TEST(SweepSpec, ExpansionOrderAndCount)
{
    const SweepSpec spec = mustDecode(
        R"({"name":"t","workloads":["164.gzip"],"seeds":[1,2],
            "backends":["lsq","nachos"],
            "axes":{"lsqBanks":[1,2],"dramLatency":[100,400]}})");
    const std::vector<SweepPoint> points = expandSweep(spec);
    // 1 workload x 1 path x 2 seeds x 2 backends x 2x2 machines.
    ASSERT_EQ(points.size(), 16u);
    // The last axis varies fastest; backends vary slower than axes.
    EXPECT_EQ(points[0].machine.lsqBanks, 1u);
    EXPECT_EQ(points[0].machine.dramLatency, 100u);
    EXPECT_EQ(points[1].machine.dramLatency, 400u);
    EXPECT_EQ(points[2].machine.lsqBanks, 2u);
    EXPECT_EQ(points[0].backend, "lsq");
    EXPECT_EQ(points[4].backend, "nachos");
    EXPECT_EQ(points[0].seed, 1u);
    EXPECT_EQ(points[8].seed, 2u);
    // Ids carry every coordinate; hashes are ids, so all distinct.
    std::unordered_set<uint64_t> hashes;
    for (const SweepPoint &p : points) {
        EXPECT_EQ(p.hash, fnv1a64(p.id));
        EXPECT_TRUE(hashes.insert(p.hash).second) << p.id;
        EXPECT_NE(p.id.find("workload=164.gzip"), std::string::npos);
        EXPECT_NE(p.id.find("lsqBanks="), std::string::npos);
    }
    // Expansion is a pure function of the spec.
    const std::vector<SweepPoint> again = expandSweep(spec);
    ASSERT_EQ(again.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(again[i].id, points[i].id);
}

TEST(SweepSpec, PointIdsSurviveSpecEdits)
{
    const SweepSpec small = mustDecode(
        R"({"name":"t","workloads":["164.gzip"],"backends":["sw"],
            "axes":{"lsqBanks":[2,4],"dramLatency":[100]}})");
    // Same sweep with the axes reordered and one extended: ids are
    // derived from coordinates, not positions, so every original
    // point keeps its identity (and its store records stay valid).
    const SweepSpec grown = mustDecode(
        R"({"name":"t2","workloads":["164.gzip"],"backends":["sw"],
            "axes":{"dramLatency":[100,400],"lsqBanks":[2,4,8]}})");
    std::unordered_set<uint64_t> grownHashes;
    for (const SweepPoint &p : expandSweep(grown))
        grownHashes.insert(p.hash);
    for (const SweepPoint &p : expandSweep(small))
        EXPECT_TRUE(grownHashes.count(p.hash)) << p.id;
}

TEST(SweepSpec, ConstraintsFilterPoints)
{
    // Literal rhs: lsqBanks <= 2 keeps half the axis.
    const SweepSpec literal = mustDecode(
        R"({"name":"t","workloads":["164.gzip"],"backends":["sw"],
            "axes":{"lsqBanks":[1,2,4,8]},
            "constraints":[{"lhs":"lsqBanks","op":"le","rhs":2}]})");
    EXPECT_EQ(expandSweep(literal).size(), 2u);

    // Axis rhs, with the rhs axis unswept: it evaluates as the
    // Figure-3 default (llcSizeBytes = 4 MiB), so only L1 sizes up
    // to 4 MiB survive -- which is all of these.
    const SweepSpec axis = mustDecode(
        R"({"name":"t","workloads":["164.gzip"],"backends":["sw"],
            "axes":{"l1SizeBytes":[65536,262144]},
            "constraints":[{"lhs":"l1SizeBytes","op":"le",
                            "rhs":"llcSizeBytes"}]})");
    EXPECT_EQ(expandSweep(axis).size(), 2u);

    // And an impossible constraint empties the sweep.
    const SweepSpec empty = mustDecode(
        R"({"name":"t","workloads":["164.gzip"],"backends":["sw"],
            "axes":{"l1SizeBytes":[65536,262144]},
            "constraints":[{"lhs":"l1SizeBytes","op":"gt",
                            "rhs":"llcSizeBytes"}]})");
    EXPECT_EQ(expandSweep(empty).size(), 0u);
}

TEST(SweepSpec, InfeasibleGeometryCornersAreSkipped)
{
    // Each single value passes decode-time validation (probed alone
    // against the defaults), but 64-way x 128B lines cannot fit a
    // 4 KiB L1 -- that corner of the cross product must vanish.
    const SweepSpec spec = mustDecode(
        R"({"name":"t","workloads":["164.gzip"],"backends":["sw"],
            "axes":{"l1SizeBytes":[4096,65536],
                    "l1Assoc":[4,64],
                    "l1LineBytes":[64,128]}})");
    const std::vector<SweepPoint> points = expandSweep(spec);
    for (const SweepPoint &p : points) {
        SimConfig sim;
        p.machine.applyTo(sim);
        EXPECT_GE(sim.mem.l1.sizeBytes,
                  uint64_t(sim.mem.l1.assoc) * sim.mem.l1.lineBytes)
            << p.id;
    }
    EXPECT_LT(points.size(), 8u); // something was filtered
    EXPECT_GT(points.size(), 0u); // but not everything
}

TEST(SweepSpec, DecodeRejectsBadSpecs)
{
    struct BadCase
    {
        const char *json;
        const char *code;
    };
    const BadCase cases[] = {
        {R"({"workloads":["164.gzip"]})", "bad_sweep"}, // no name
        {R"({"name":"t"})", "bad_sweep"},               // no workloads
        {R"({"name":"t","workloads":["no-such"]})", "unknown_workload"},
        {R"({"name":"t","workloads":["164.gzip"],"bogus":1})",
         "bad_sweep"},
        {R"({"name":"t","workloads":["164.gzip"],"seeds":[0]})",
         "bad_seed"},
        {R"({"name":"t","workloads":["164.gzip"],
             "backends":["vliw"]})",
         "bad_sweep"},
        {R"({"name":"t","workloads":["164.gzip"],
             "axes":{"frobnicate":[1]}})",
         "bad_sweep"},
        {R"({"name":"t","workloads":["164.gzip"],
             "axes":{"lsqBanks":[]}})",
         "bad_sweep"},
        {R"({"name":"t","workloads":["164.gzip"],
             "axes":{"lsqBanks":[2,2]}})",
         "bad_sweep"},
        {R"({"name":"t","workloads":["164.gzip"],
             "axes":{"l1LineBytes":[48]}})",
         "bad_machine"}, // per-value probe: not a power of two
        {R"({"name":"t","workloads":["164.gzip"],
             "constraints":[{"lhs":"lsqBanks","op":"approx",
                             "rhs":2}]})",
         "bad_sweep"},
        {R"({"name":"t","workloads":["164.gzip"],
             "constraints":[{"lhs":"nope","op":"le","rhs":2}]})",
         "bad_sweep"},
    };
    for (const BadCase &c : cases) {
        SweepSpec spec;
        CodecError err;
        EXPECT_FALSE(decodeSweepSpec(mustParse(c.json), spec, err))
            << c.json;
        EXPECT_EQ(err.code, c.code) << c.json;
    }
}

TEST(SweepSpec, EncodeRoundTrips)
{
    const SweepSpec spec = mustDecode(
        R"({"name":"rt","workloads":["164.gzip","179.art"],
            "paths":[0,1],"seeds":[1,7],"backends":["lsq","sw"],
            "invocations":6,
            "axes":{"lsqBanks":[2,8],"l1SizeBytes":[16384]},
            "constraints":[{"lhs":"l1SizeBytes","op":"le",
                            "rhs":"llcSizeBytes"},
                           {"lhs":"lsqBanks","op":"ne","rhs":4}]})");
    SweepSpec back;
    CodecError err;
    ASSERT_TRUE(decodeSweepSpec(encodeSweepSpec(spec), back, err))
        << "[" << err.code << "] " << err.message;
    EXPECT_EQ(dumpJson(encodeSweepSpec(back)),
              dumpJson(encodeSweepSpec(spec)));
    const std::vector<SweepPoint> a = expandSweep(spec);
    const std::vector<SweepPoint> b = expandSweep(back);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].id, b[i].id);
}

TEST(SweepSpec, AxisAccessorsCoverEveryField)
{
    MachineOverrides m;
    for (size_t i = 0; i < kNumMachineAxes; ++i) {
        const std::string field = machineAxisNames()[i];
        ASSERT_TRUE(setMachineAxis(m, field, i + 1)) << field;
        uint64_t value = 0;
        ASSERT_TRUE(getMachineAxis(m, field, value)) << field;
        EXPECT_EQ(value, i + 1) << field;
        EXPECT_GT(machineAxisDefault(field), 0u) << field;
    }
    EXPECT_FALSE(setMachineAxis(m, "bogus", 1));
    uint64_t ignored = 0;
    EXPECT_FALSE(getMachineAxis(m, "bogus", ignored));
}

// ---- store --------------------------------------------------------

SweepRecord
record(uint64_t n)
{
    SweepRecord r;
    r.id = "point-" + std::to_string(n);
    r.hash = fnv1a64(r.id);
    r.workload = "164.gzip";
    r.seed = 1;
    r.backend = "sw";
    r.invocations = 2;
    r.machine.lsqBanks = static_cast<uint32_t>(n % 7 + 1);
    r.cycles = 1000 + n;
    r.cyclesPerInvocation = (1000.0 + n) / 2.0;
    r.maxMlp = 4;
    r.avgMlp = 2.5;
    r.loadValueDigest = 0x9e3779b97f4a7c15ull ^ n;
    r.energyTotal = 123.5 + n;
    r.areaProxy = 40.25;
    r.seconds = 0.001 * n;
    return r;
}

TEST(SweepStore, RecordRoundTripsAndRejectsJunk)
{
    const SweepRecord r = record(3);
    SweepRecord back;
    CodecError err;
    ASSERT_TRUE(decodeSweepRecord(encodeSweepRecord(r), back, err))
        << err.message;
    EXPECT_EQ(dumpJson(encodeSweepRecord(back)),
              dumpJson(encodeSweepRecord(r)));
    EXPECT_EQ(back.hash, r.hash);
    EXPECT_EQ(back.machine, r.machine);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.energyTotal, r.energyTotal);

    JsonValue missing = encodeSweepRecord(r);
    EXPECT_FALSE(decodeSweepRecord(mustParse("[1]"), back, err));
    EXPECT_EQ(err.code, "bad_record");
    EXPECT_FALSE(
        decodeSweepRecord(mustParse(R"({"id":"x"})"), back, err));
    EXPECT_EQ(err.code, "bad_record");
}

TEST(SweepStore, MissingFileIsEmptyAndAppendsAccumulate)
{
    const std::string path = tempStore("accumulate");
    SweepStore store(path);
    SweepLoadResult loaded;
    std::string error;
    ASSERT_TRUE(store.load(loaded, &error)) << error;
    EXPECT_TRUE(loaded.records.empty());
    EXPECT_FALSE(loaded.tornTail);

    ASSERT_TRUE(store.openForAppend(loaded, &error)) << error;
    ASSERT_TRUE(store.append(record(1), &error)) << error;
    ASSERT_TRUE(store.append(record(2), &error)) << error;
    store.close();

    // Reopening resumes where the file left off.
    SweepStore again(path);
    ASSERT_TRUE(again.openForAppend(loaded, &error)) << error;
    ASSERT_EQ(loaded.records.size(), 2u);
    ASSERT_TRUE(again.append(record(3), &error)) << error;
    again.close();
    ASSERT_TRUE(again.load(loaded, &error)) << error;
    ASSERT_EQ(loaded.records.size(), 3u);
    EXPECT_EQ(loaded.records[2].cycles, 1003u);
    EXPECT_EQ(completedHashes(loaded.records).size(), 3u);
}

TEST(SweepStore, TornTailIsDroppedAndTruncated)
{
    const std::string path = tempStore("torn");
    {
        SweepStore store(path);
        SweepLoadResult loaded;
        std::string error;
        ASSERT_TRUE(store.openForAppend(loaded, &error)) << error;
        ASSERT_TRUE(store.append(record(1), &error)) << error;
        ASSERT_TRUE(store.append(record(2), &error)) << error;
    }
    // Simulate a kill mid-append: half a record, no newline.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << R"({"id":"point-3","hash":12)";
    }
    SweepStore store(path);
    SweepLoadResult loaded;
    std::string error;
    ASSERT_TRUE(store.load(loaded, &error)) << error;
    EXPECT_TRUE(loaded.tornTail);
    ASSERT_EQ(loaded.records.size(), 2u);

    // openForAppend truncates the tail; the next append lands on a
    // clean line boundary and the store parses whole again.
    ASSERT_TRUE(store.openForAppend(loaded, &error)) << error;
    ASSERT_TRUE(store.append(record(3), &error)) << error;
    store.close();
    ASSERT_TRUE(store.load(loaded, &error)) << error;
    EXPECT_FALSE(loaded.tornTail);
    ASSERT_EQ(loaded.records.size(), 3u);
    EXPECT_EQ(loaded.records[2].id, "point-3");
}

TEST(SweepStore, CompleteFinalLineWithoutNewlineIsTorn)
{
    // A record whose bytes all arrived but whose newline didn't must
    // be re-run, not half-trusted: the append that wrote it died.
    const std::string path = tempStore("nonewline");
    {
        std::ofstream out(path, std::ios::binary);
        out << dumpJson(encodeSweepRecord(record(1))) << "\n";
        out << dumpJson(encodeSweepRecord(record(2))); // no newline
    }
    SweepStore store(path);
    SweepLoadResult loaded;
    std::string error;
    ASSERT_TRUE(store.load(loaded, &error)) << error;
    EXPECT_TRUE(loaded.tornTail);
    ASSERT_EQ(loaded.records.size(), 1u);
}

TEST(SweepStore, CorruptionBeforeTheTailFailsLoud)
{
    const std::string path = tempStore("corrupt");
    {
        std::ofstream out(path, std::ios::binary);
        out << dumpJson(encodeSweepRecord(record(1))) << "\n";
        out << "garbage\n";
        out << dumpJson(encodeSweepRecord(record(2))) << "\n";
    }
    SweepStore store(path);
    SweepLoadResult loaded;
    std::string error;
    EXPECT_FALSE(store.load(loaded, &error));
    EXPECT_NE(error.find("malformed"), std::string::npos);
}

TEST(SweepStore, DuplicateHashFailsLoud)
{
    const std::string path = tempStore("dup");
    {
        std::ofstream out(path, std::ios::binary);
        out << dumpJson(encodeSweepRecord(record(1))) << "\n";
        out << dumpJson(encodeSweepRecord(record(1))) << "\n";
    }
    SweepStore store(path);
    SweepLoadResult loaded;
    std::string error;
    EXPECT_FALSE(store.load(loaded, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
}

// ---- reports ------------------------------------------------------

TEST(SweepReport, AreaProxyTracksStructuresAndBackends)
{
    const MachineOverrides stock;
    // Disambiguation hardware: LSQ pays CAMs, NACHOS pays
    // comparators, software pays nothing extra.
    EXPECT_GT(areaProxy(stock, "lsq"), areaProxy(stock, "nachos"));
    EXPECT_GT(areaProxy(stock, "nachos"), areaProxy(stock, "sw"));
    // Growing an array grows the proxy.
    MachineOverrides bigL1;
    bigL1.l1SizeBytes = 256 * 1024;
    EXPECT_GT(areaProxy(bigL1, "sw"), areaProxy(stock, "sw"));
    MachineOverrides moreBanks;
    moreBanks.lsqBanks = 8;
    EXPECT_GT(areaProxy(moreBanks, "lsq"), areaProxy(stock, "lsq"));
    // ...but only on the backend that owns the structure.
    EXPECT_EQ(areaProxy(moreBanks, "sw"), areaProxy(stock, "sw"));
}

TEST(SweepReport, ParetoFrontierDropsDominatedKeepsTies)
{
    auto point = [](uint64_t cycles, double energy, double area) {
        SweepRecord r;
        r.cycles = cycles;
        r.energyTotal = energy;
        r.areaProxy = area;
        return r;
    };
    const std::vector<SweepRecord> records = {
        point(100, 10.0, 5.0), // [0] fast but hot
        point(200, 5.0, 5.0),  // [1] slow but cool
        point(200, 10.0, 5.0), // [2] dominated by both
        point(150, 7.0, 4.0),  // [3] the compromise, smallest area
        point(100, 10.0, 5.0), // [4] exact tie with [0]: survives
    };
    const std::vector<size_t> frontier = paretoFrontier(records);
    EXPECT_EQ(frontier, (std::vector<size_t>{0, 1, 3, 4}));
}

TEST(SweepReport, ReportIsIndependentOfStoreOrderAndWallClock)
{
    std::vector<SweepRecord> straight;
    for (uint64_t n = 1; n <= 6; ++n) {
        SweepRecord r = record(n);
        r.backend = n % 2 ? "lsq" : "nachos";
        r.machine.lsqBanks = static_cast<uint32_t>(n);
        straight.push_back(r);
    }
    // A resumed sweep stores the same records in a different order
    // with different wall-clock timings.
    std::vector<SweepRecord> resumed = {straight[4], straight[5],
                                        straight[0], straight[1],
                                        straight[2], straight[3]};
    for (SweepRecord &r : resumed)
        r.seconds *= 100.0;
    const std::string a = renderSweepReport(straight);
    EXPECT_EQ(a, renderSweepReport(resumed));
    EXPECT_NE(a.find("pareto"), std::string::npos);
    EXPECT_NE(a.find("axis lsqBanks:"), std::string::npos);
}

// ---- in-process orchestrator -------------------------------------

TEST(SweepRun, InProcessRunSkipResumeMatchesStraightThrough)
{
    const SweepSpec spec = mustDecode(
        R"({"name":"mini","workloads":["164.gzip"],"backends":["sw"],
            "invocations":2,"axes":{"dramLatency":[100,400]}})");
    const std::vector<SweepPoint> points = expandSweep(spec);
    ASSERT_EQ(points.size(), 2u);

    SweepRunOptions options;
    options.cacheEntries = 2;
    SweepRunStats stats;
    std::string error;

    // Straight through.
    SweepStore straight(tempStore("straight"));
    ASSERT_TRUE(runSweepInProcess(points, straight, options, stats,
                                  &error))
        << error;
    EXPECT_EQ(stats.expanded, 2u);
    EXPECT_EQ(stats.ran, 2u);
    EXPECT_EQ(stats.skipped, 0u);
    straight.close();

    // Interrupted after one point, then resumed.
    SweepStore interrupted(tempStore("interrupted"));
    SweepRunOptions firstHalf = options;
    firstHalf.limit = 1;
    ASSERT_TRUE(runSweepInProcess(points, interrupted, firstHalf,
                                  stats, &error))
        << error;
    EXPECT_EQ(stats.ran, 1u);
    interrupted.close();
    ASSERT_TRUE(runSweepInProcess(points, interrupted, options, stats,
                                  &error))
        << error;
    EXPECT_EQ(stats.skipped, 1u);
    EXPECT_EQ(stats.ran, 1u);
    interrupted.close();

    // Nothing left: a third run is a no-op.
    ASSERT_TRUE(runSweepInProcess(points, interrupted, options, stats,
                                  &error))
        << error;
    EXPECT_EQ(stats.skipped, 2u);
    EXPECT_EQ(stats.ran, 0u);
    interrupted.close();

    // One record per point either way, and byte-identical reports.
    SweepLoadResult a, b;
    ASSERT_TRUE(straight.load(a, &error)) << error;
    ASSERT_TRUE(interrupted.load(b, &error)) << error;
    ASSERT_EQ(a.records.size(), 2u);
    ASSERT_EQ(b.records.size(), 2u);
    EXPECT_EQ(renderSweepReport(a.records),
              renderSweepReport(b.records));
    for (const SweepRecord &r : a.records) {
        EXPECT_EQ(r.backend, "sw");
        EXPECT_EQ(r.invocations, 2u);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_GT(r.energyTotal, 0.0);
    }
    // The overridden DRAM latency reached the simulator.
    EXPECT_NE(a.records[0].cycles, a.records[1].cycles);
}

} // namespace
} // namespace nachos
