#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"

namespace nachos {
namespace {

MdeSet
analyzeAndInsert(const Region &r, PipelineConfig cfg = {})
{
    AliasAnalysisResult res = runAliasPipeline(r, cfg);
    return insertMdes(r, res.matrix);
}

TEST(Inserter, StLdExactBecomesForward)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    OpId st = b.store(b.at(a, 0), v);
    OpId ld = b.load(b.at(a, 0));
    Region r = b.build();

    MdeSet mdes = analyzeAndInsert(r);
    ASSERT_EQ(mdes.size(), 1u);
    EXPECT_EQ(mdes.edges()[0].kind, MdeKind::Forward);
    EXPECT_EQ(mdes.edges()[0].older, st);
    EXPECT_EQ(mdes.edges()[0].younger, ld);
}

TEST(Inserter, PartialOverlapBecomesOrder)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v, 8);
    b.load(b.at(a, 4), 8);
    Region r = b.build();

    MdeSet mdes = analyzeAndInsert(r);
    ASSERT_EQ(mdes.size(), 1u);
    EXPECT_EQ(mdes.edges()[0].kind, MdeKind::Order);
}

TEST(Inserter, LdStAndStStBecomeOrder)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.load(b.at(a, 0));       // 0
    b.store(b.at(a, 0), v);   // 1: LD->ST order
    b.store(b.at(a, 0), v);   // 2: ST->ST order
    Region r = b.build();

    MdeSet mdes = analyzeAndInsert(r);
    MdeCounts c = mdes.counts();
    EXPECT_EQ(c.order, 2u);
    EXPECT_EQ(c.forward, 0u);
}

TEST(Inserter, ForwardFromYoungestStore)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v1 = b.constant(1);
    OpId v2 = b.constant(2);
    OpId st0 = b.store(b.at(a, 0), v1);
    OpId st1 = b.store(b.at(a, 0), v2);
    OpId ld = b.load(b.at(a, 0));
    Region r = b.build();
    (void)st0;

    MdeSet mdes = analyzeAndInsert(r);
    EXPECT_TRUE(mdes.hasForwardSource(ld));
    EXPECT_EQ(mdes.forwardSource(ld), st1);
    // The older store still orders against the load (kept ST->LD).
    bool found_order_from_st0 = false;
    for (const auto &e : mdes.edges()) {
        if (e.older == st0 && e.younger == ld)
            found_order_from_st0 = e.kind == MdeKind::Order;
    }
    EXPECT_TRUE(found_order_from_st0);
}

TEST(Inserter, MayPairsBecomeMayEdges)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    ParamId p = b.pointerParam("p", a);
    ParamId q = b.pointerParam("q", c);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v);
    b.load(b.atParam(q, 0));
    Region r = b.build();

    MdeSet mdes = analyzeAndInsert(r);
    ASSERT_EQ(mdes.size(), 1u);
    EXPECT_EQ(mdes.edges()[0].kind, MdeKind::May);
}

TEST(Inserter, NoEdgesForIndependentOps)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);
    b.store(b.at(c, 0), v);
    b.load(b.at(a, 2048));
    Region r = b.build();

    MdeSet mdes = analyzeAndInsert(r);
    EXPECT_EQ(mdes.size(), 0u);
}

TEST(Inserter, SubsumedPairsProduceNoEdges)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId ld = b.load(b.at(a, 0));
    OpId x = b.iadd(ld, ld);
    b.store(b.at(a, 0), x); // data chain subsumes LD->ST
    Region r = b.build();

    MdeSet mdes = analyzeAndInsert(r);
    EXPECT_EQ(mdes.size(), 0u);
}

TEST(Inserter, WithoutStage3EdgesAppear)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId ld = b.load(b.at(a, 0));
    OpId x = b.iadd(ld, ld);
    b.store(b.at(a, 0), x);
    Region r = b.build();

    PipelineConfig cfg;
    cfg.stage3 = false;
    MdeSet mdes = analyzeAndInsert(r, cfg);
    EXPECT_EQ(mdes.size(), 1u);
    EXPECT_EQ(mdes.edges()[0].kind, MdeKind::Order);
}

} // namespace
} // namespace nachos
