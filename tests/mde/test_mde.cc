#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.hh"
#include "mde/mde.hh"

namespace nachos {
namespace {

Region
threeMemOpRegion()
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);
    b.load(b.at(a, 0));
    b.store(b.at(a, 8), v);
    return b.build();
}

TEST(MdeSet, AddAndIndex)
{
    Region r = threeMemOpRegion();
    const auto &mem = r.memOps();
    MdeSet mdes(r);
    mdes.add(mem[0], mem[1], MdeKind::Forward);
    mdes.add(mem[0], mem[2], MdeKind::Order);
    mdes.add(mem[1], mem[2], MdeKind::May);

    EXPECT_EQ(mdes.size(), 3u);
    EXPECT_EQ(mdes.incoming(mem[2]).size(), 2u);
    EXPECT_EQ(mdes.outgoing(mem[0]).size(), 2u);
    EXPECT_EQ(mdes.incoming(mem[0]).size(), 0u);

    MdeCounts c = mdes.counts();
    EXPECT_EQ(c.forward, 1u);
    EXPECT_EQ(c.order, 1u);
    EXPECT_EQ(c.may, 1u);
    EXPECT_EQ(c.total(), 3u);
}

TEST(MdeSet, ForwardSourceLookup)
{
    Region r = threeMemOpRegion();
    const auto &mem = r.memOps();
    MdeSet mdes(r);
    EXPECT_FALSE(mdes.hasForwardSource(mem[1]));
    mdes.add(mem[0], mem[1], MdeKind::Forward);
    EXPECT_TRUE(mdes.hasForwardSource(mem[1]));
    EXPECT_EQ(mdes.forwardSource(mem[1]), mem[0]);
}

TEST(MdeSet, MayFanIns)
{
    Region r = threeMemOpRegion();
    const auto &mem = r.memOps();
    MdeSet mdes(r);
    mdes.add(mem[0], mem[2], MdeKind::May);
    mdes.add(mem[1], mem[2], MdeKind::May);
    auto fanins = mdes.mayFanIns(r);
    ASSERT_EQ(fanins.size(), 3u);
    EXPECT_EQ(fanins[0], 0u);
    EXPECT_EQ(fanins[1], 0u);
    EXPECT_EQ(fanins[2], 2u);
}

TEST(MdeSetDeathTest, BackwardEdgePanics)
{
    Region r = threeMemOpRegion();
    const auto &mem = r.memOps();
    MdeSet mdes(r);
    EXPECT_DEATH(mdes.add(mem[2], mem[0], MdeKind::Order),
                 "older -> younger");
}

TEST(MdeSetDeathTest, MissingForwardSourcePanics)
{
    Region r = threeMemOpRegion();
    MdeSet mdes(r);
    EXPECT_DEATH(mdes.forwardSource(r.memOps()[1]), "no FORWARD");
}

TEST(MdeDot, EmitsDashedEdges)
{
    Region r = threeMemOpRegion();
    const auto &mem = r.memOps();
    MdeSet mdes(r);
    mdes.add(mem[0], mem[1], MdeKind::Forward);
    std::ostringstream os;
    dumpDotWithMdes(r, mdes, os);
    EXPECT_NE(os.str().find("style=dashed"), std::string::npos);
    EXPECT_NE(os.str().find("FORWARD"), std::string::npos);
}

TEST(MdeKindNames, AllNamed)
{
    EXPECT_STREQ(mdeKindName(MdeKind::Order), "ORDER");
    EXPECT_STREQ(mdeKindName(MdeKind::Forward), "FORWARD");
    EXPECT_STREQ(mdeKindName(MdeKind::May), "MAY");
}

} // namespace
} // namespace nachos
