#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace nachos {
namespace {

TEST(Prefetcher, NextLinePrefetchTurnsMissesIntoHits)
{
    StatSet stats;
    MainMemory dram(100, 8);
    CacheConfig cfg{8192, 2, 64, 3, 8, 4, "l1", true};
    Cache cache(cfg, dram, stats);

    // Sequential line-by-line stream, spaced so fills complete.
    uint64_t t = 0;
    for (uint64_t line = 0; line < 16; ++line)
        t = cache.access(line * 64, false, t + 150);

    EXPECT_GE(stats.get("l1.prefetches"), 8u);
    // Every other line was prefetched ahead of its demand access.
    EXPECT_GE(stats.get("l1.hits"), 7u);
}

TEST(Prefetcher, OffByDefault)
{
    StatSet stats;
    MainMemory dram(100, 8);
    CacheConfig cfg;
    Cache cache(cfg, dram, stats);
    uint64_t t = cache.access(0, false, 0);
    cache.access(64, false, t + 1);
    EXPECT_EQ(stats.get("cache.prefetches"), 0u);
    EXPECT_EQ(stats.get("cache.misses"), 2u);
}

TEST(Prefetcher, DoesNotRefetchResidentLine)
{
    StatSet stats;
    MainMemory dram(100, 8);
    CacheConfig cfg{8192, 2, 64, 3, 8, 4, "l1", true};
    Cache cache(cfg, dram, stats);
    uint64_t t = cache.access(64, false, 0); // makes line 1 resident
    t = cache.access(0, false, t + 1);       // miss; next line resident
    // Only the two demand fills went to DRAM plus at most the first
    // access's own prefetch of line 2.
    EXPECT_LE(dram.totalAccesses(), 3u);
}

} // namespace
} // namespace nachos
