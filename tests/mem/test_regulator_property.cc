#include <gtest/gtest.h>

#include <map>

#include "mem/cache.hh"
#include "support/random.hh"

namespace nachos {
namespace {

class RegulatorProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RegulatorProperty, NeverExceedsRateAndNeverRewindsTime)
{
    Rng rng(GetParam() * 13 + 1);
    const uint32_t rate = static_cast<uint32_t>(rng.range(1, 6));
    BandwidthRegulator bw(rate);

    std::map<uint64_t, uint32_t> per_cycle;
    uint64_t cursor = 0;
    for (int i = 0; i < 500; ++i) {
        // Mostly monotone requests with occasional out-of-order dips
        // (the writeback pattern the cache model produces).
        if (rng.chance(0.8))
            cursor += rng.below(3);
        uint64_t ask =
            rng.chance(0.15) && cursor > 4 ? cursor - 4 : cursor;
        uint64_t granted = bw.admit(ask);
        EXPECT_GE(granted, ask);
        ++per_cycle[granted];
    }
    for (const auto &[cycle, count] : per_cycle)
        EXPECT_LE(count, rate) << "cycle " << cycle;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegulatorProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

TEST(Regulator, GrantsAreMonotoneNonDecreasing)
{
    BandwidthRegulator bw(2);
    uint64_t last = 0;
    for (uint64_t c = 0; c < 100; ++c) {
        uint64_t g = bw.admit(c / 3);
        EXPECT_GE(g, last);
        last = g;
    }
}

// Pins the monotone-grant semantics for out-of-order request cycles:
// once the regulator has granted up to cycle C, a later request for an
// earlier cycle is served AT C (never back in time), and extra
// requests spill forward one slot at a time.
TEST(Regulator, OutOfOrderRequestsNeverRewind)
{
    BandwidthRegulator bw(2);
    EXPECT_EQ(bw.admit(10), 10u); // first slot of cycle 10
    EXPECT_EQ(bw.admit(4), 10u);  // late request rides cycle 10's slot
    EXPECT_EQ(bw.admit(4), 11u);  // cycle 10 full: spills to 11
    EXPECT_EQ(bw.admit(4), 11u);
    EXPECT_EQ(bw.admit(4), 12u);
    EXPECT_EQ(bw.admit(20), 20u); // jump forward resumes at request
}

TEST(Regulator, SingleSlotSerializes)
{
    BandwidthRegulator bw(1);
    EXPECT_EQ(bw.admit(0), 0u);
    EXPECT_EQ(bw.admit(0), 1u);
    EXPECT_EQ(bw.admit(0), 2u);
    EXPECT_EQ(bw.admit(2), 3u); // cycle 2 already consumed by spill
}

// cycle * perCycle_ must not wrap: the regulator asserts on requests
// beyond UINT64_MAX / rate instead of silently granting bogus slots.
TEST(RegulatorDeath, AssertsOnCycleOverflow)
{
    BandwidthRegulator bw(4);
    EXPECT_EQ(bw.admit(1000), 1000u); // sane cycles still fine
    EXPECT_DEATH(bw.admit(UINT64_MAX / 2), "overflow");
}

TEST(RegulatorDeath, AssertsOnZeroRate)
{
    EXPECT_DEATH(BandwidthRegulator bw(0), "at least one slot");
}

// The largest representable cycle for the rate is still granted
// exactly (boundary of the overflow guard).
TEST(Regulator, GrantsAtOverflowBoundary)
{
    BandwidthRegulator bw(4);
    const uint64_t limit = UINT64_MAX / 4;
    EXPECT_EQ(bw.admit(limit), limit);
}

} // namespace
} // namespace nachos
