#include <gtest/gtest.h>

#include <map>

#include "mem/cache.hh"
#include "support/random.hh"

namespace nachos {
namespace {

class RegulatorProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RegulatorProperty, NeverExceedsRateAndNeverRewindsTime)
{
    Rng rng(GetParam() * 13 + 1);
    const uint32_t rate = static_cast<uint32_t>(rng.range(1, 6));
    BandwidthRegulator bw(rate);

    std::map<uint64_t, uint32_t> per_cycle;
    uint64_t cursor = 0;
    for (int i = 0; i < 500; ++i) {
        // Mostly monotone requests with occasional out-of-order dips
        // (the writeback pattern the cache model produces).
        if (rng.chance(0.8))
            cursor += rng.below(3);
        uint64_t ask =
            rng.chance(0.15) && cursor > 4 ? cursor - 4 : cursor;
        uint64_t granted = bw.admit(ask);
        EXPECT_GE(granted, ask);
        ++per_cycle[granted];
    }
    for (const auto &[cycle, count] : per_cycle)
        EXPECT_LE(count, rate) << "cycle " << cycle;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegulatorProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

TEST(Regulator, GrantsAreMonotoneNonDecreasing)
{
    BandwidthRegulator bw(2);
    uint64_t last = 0;
    for (uint64_t c = 0; c < 100; ++c) {
        uint64_t g = bw.admit(c / 3);
        EXPECT_GE(g, last);
        last = g;
    }
}

} // namespace
} // namespace nachos
