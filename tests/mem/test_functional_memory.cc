#include <gtest/gtest.h>

#include "mem/functional_memory.hh"

namespace nachos {
namespace {

TEST(FunctionalMemory, WriteThenReadRoundTrips)
{
    FunctionalMemory mem;
    mem.write(0x1000, 8, 0x1122334455667788LL);
    EXPECT_EQ(mem.read(0x1000, 8), 0x1122334455667788LL);
}

TEST(FunctionalMemory, PartialReadLittleEndian)
{
    FunctionalMemory mem;
    mem.write(0x2000, 8, 0x1122334455667788LL);
    EXPECT_EQ(mem.read(0x2000, 4) & 0xffffffff, 0x55667788u);
    EXPECT_EQ(mem.read(0x2004, 4) & 0xffffffff, 0x11223344u);
}

TEST(FunctionalMemory, OverlappingWritesMergeBytes)
{
    FunctionalMemory mem;
    mem.write(0x3000, 8, 0);
    mem.write(0x3004, 4, static_cast<int64_t>(0xdeadbeef));
    uint64_t v = static_cast<uint64_t>(mem.read(0x3000, 8));
    EXPECT_EQ(v >> 32, 0xdeadbeefu);
    EXPECT_EQ(v & 0xffffffffu, 0u);
}

TEST(FunctionalMemory, BackgroundIsDeterministicNonZero)
{
    FunctionalMemory a, b;
    EXPECT_EQ(a.read(0x4000, 8), b.read(0x4000, 8));
    EXPECT_NE(a.read(0x4000, 8), a.read(0x4008, 8));
}

TEST(FunctionalMemory, ResetForgetsWrites)
{
    FunctionalMemory mem;
    int64_t before = mem.read(0x5000, 8);
    mem.write(0x5000, 8, 42);
    EXPECT_EQ(mem.read(0x5000, 8), 42);
    mem.reset();
    EXPECT_EQ(mem.read(0x5000, 8), before);
    EXPECT_EQ(mem.footprint(), 0u);
}

TEST(FunctionalMemory, ImageSortedByAddress)
{
    FunctionalMemory mem;
    mem.write(0x9000, 1, 1);
    mem.write(0x100, 1, 2);
    auto img = mem.image();
    ASSERT_EQ(img.size(), 2u);
    EXPECT_EQ(img[0].first, 0x100u);
    EXPECT_EQ(img[1].first, 0x9000u);
}

TEST(FunctionalMemoryDeathTest, BadSizePanics)
{
    FunctionalMemory mem;
    EXPECT_DEATH(mem.read(0, 0), "size");
    EXPECT_DEATH(mem.write(0, 16, 0), "size");
}

} // namespace
} // namespace nachos
