/**
 * @file
 * Differential fuzz of the paged FunctionalMemory against a
 * straightforward per-byte map reference (the pre-optimization data
 * structure). Random reads, writes, sizes, and addresses — including
 * page-straddling and unaligned accesses — must produce identical
 * load values, footprint(), and image() on both implementations.
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "mem/functional_memory.hh"
#include "support/random.hh"

namespace nachos {
namespace {

/** The original implementation: one map entry per written byte. */
class ReferenceMemory
{
  public:
    int64_t
    read(uint64_t addr, uint32_t size) const
    {
        uint64_t v = 0;
        for (uint32_t i = 0; i < size; ++i) {
            auto it = bytes_.find(addr + i);
            const uint8_t b = it != bytes_.end()
                                  ? it->second
                                  : FunctionalMemory::backgroundByte(
                                        addr + i);
            v |= static_cast<uint64_t>(b) << (8 * i);
        }
        // No sign extension: read() returns the raw little-endian
        // bytes zero-extended, compared bit-for-bit by callers.
        return static_cast<int64_t>(v);
    }

    void
    write(uint64_t addr, uint32_t size, int64_t value)
    {
        for (uint32_t i = 0; i < size; ++i)
            bytes_[addr + i] =
                static_cast<uint8_t>(static_cast<uint64_t>(value) >>
                                     (8 * i));
    }

    void reset() { bytes_.clear(); }

    size_t footprint() const { return bytes_.size(); }

    std::vector<std::pair<uint64_t, uint8_t>>
    image() const
    {
        return {bytes_.begin(), bytes_.end()};
    }

  private:
    std::map<uint64_t, uint8_t> bytes_;
};

class FunctionalMemoryFuzz : public ::testing::TestWithParam<uint64_t>
{};

/**
 * Address generator biased toward interesting spots: page boundaries
 * (straddles), small clusters (read-after-write hits), and a sprinkle
 * of far-away pages (sparse map churn).
 */
uint64_t
fuzzAddr(Rng &rng)
{
    constexpr uint64_t kPage = FunctionalMemory::kPageBytes;
    if (rng.chance(0.25)) {
        // Within +/-8 bytes of a page boundary: straddling accesses.
        const uint64_t page = 1 + rng.below(8);
        return page * kPage - 8 + rng.below(16);
    }
    if (rng.chance(0.5))
        return rng.below(256); // dense cluster, frequent overlap
    return rng.below(8 * kPage);
}

TEST_P(FunctionalMemoryFuzz, MatchesByteMapReference)
{
    Rng rng(GetParam() * 0x9e37 + 17);
    FunctionalMemory paged;
    ReferenceMemory ref;

    for (int step = 0; step < 20000; ++step) {
        const uint64_t addr = fuzzAddr(rng); // unaligned on purpose
        const uint32_t size = static_cast<uint32_t>(rng.range(1, 8));
        if (rng.chance(0.45)) {
            const int64_t value = static_cast<int64_t>(rng.next());
            paged.write(addr, size, value);
            ref.write(addr, size, value);
        } else {
            ASSERT_EQ(paged.read(addr, size), ref.read(addr, size))
                << "step " << step << " addr " << addr << " size "
                << size;
        }
        if (step % 1024 == 0) {
            ASSERT_EQ(paged.footprint(), ref.footprint())
                << "step " << step;
        }
        if (rng.chance(0.0005)) {
            paged.reset();
            ref.reset();
        }
    }

    ASSERT_EQ(paged.footprint(), ref.footprint());
    ASSERT_EQ(paged.image(), ref.image());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FunctionalMemoryFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

TEST(FunctionalMemoryPaged, UnwrittenBytesReadBackground)
{
    FunctionalMemory fm;
    // Mixed word: write bytes 0,2 of an 8-byte read; 1,3..7 come from
    // the background hash.
    fm.write(0x1000, 1, 0x11);
    fm.write(0x1002, 1, 0x33);
    const uint64_t got = static_cast<uint64_t>(fm.read(0x1000, 8));
    EXPECT_EQ(got & 0xff, 0x11u);
    EXPECT_EQ((got >> 16) & 0xff, 0x33u);
    EXPECT_EQ((got >> 8) & 0xff, FunctionalMemory::backgroundByte(0x1001));
    for (uint32_t i = 3; i < 8; ++i)
        EXPECT_EQ((got >> (8 * i)) & 0xff,
                  FunctionalMemory::backgroundByte(0x1000 + i));
}

TEST(FunctionalMemoryPaged, PageStraddleRoundTrips)
{
    constexpr uint64_t kPage = FunctionalMemory::kPageBytes;
    FunctionalMemory fm;
    const int64_t v = static_cast<int64_t>(0x0123456789abcdefULL);
    fm.write(kPage - 3, 8, v); // 3 bytes in page 0, 5 in page 1
    EXPECT_EQ(fm.read(kPage - 3, 8), v);
    EXPECT_EQ(fm.footprint(), 8u);
}

TEST(FunctionalMemoryPaged, ResetKeepsPagesButForgetsContents)
{
    FunctionalMemory fm;
    fm.write(0x40, 8, -1);
    ASSERT_EQ(fm.footprint(), 8u);
    fm.reset();
    EXPECT_EQ(fm.footprint(), 0u);
    EXPECT_TRUE(fm.image().empty());
    // Reads after reset see background bytes again, not stale data.
    EXPECT_EQ(static_cast<uint64_t>(fm.read(0x40, 1)) & 0xff,
              FunctionalMemory::backgroundByte(0x40));
}

} // namespace
} // namespace nachos
