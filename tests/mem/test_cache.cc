#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

namespace nachos {
namespace {

TEST(BandwidthRegulator, AdmitsPerCycleLimit)
{
    BandwidthRegulator bw(2);
    EXPECT_EQ(bw.admit(10), 10u);
    EXPECT_EQ(bw.admit(10), 10u);
    EXPECT_EQ(bw.admit(10), 11u); // third in the same cycle spills
    EXPECT_EQ(bw.admit(10), 11u); // requests may arrive "late"
    EXPECT_EQ(bw.admit(12), 12u);
}

TEST(MainMemory, FixedLatency)
{
    MainMemory dram(200, 4);
    EXPECT_EQ(dram.access(0, false, 5), 205u);
    EXPECT_EQ(dram.totalAccesses(), 1u);
}

class CacheTest : public ::testing::Test
{
  protected:
    StatSet stats;
    MainMemory dram{100, 8};
    CacheConfig cfg{1024, 2, 64, 3, 4, 2, "l1"};
    Cache cache{cfg, dram, stats};
};

TEST_F(CacheTest, MissThenHit)
{
    uint64_t t1 = cache.access(0x80, false, 0);
    EXPECT_GT(t1, 100u); // went to DRAM
    EXPECT_EQ(stats.get("l1.misses"), 1u);
    uint64_t t2 = cache.access(0x80, false, t1 + 1);
    EXPECT_EQ(t2, t1 + 1 + 3); // hit latency
    EXPECT_EQ(stats.get("l1.hits"), 1u);
}

TEST_F(CacheTest, SameLineDifferentWordHits)
{
    uint64_t t1 = cache.access(0x100, false, 0);
    uint64_t t2 = cache.access(0x138, false, t1 + 1); // same 64B line
    EXPECT_EQ(t2, t1 + 1 + 3);
}

TEST_F(CacheTest, MshrMergesConcurrentMissesToSameLine)
{
    cache.access(0x200, false, 0);
    uint64_t t2 = cache.access(0x208, false, 1); // same line, in flight
    EXPECT_EQ(stats.get("l1.mshrMerges"), 1u);
    EXPECT_EQ(stats.get("l1.misses"), 2u);
    EXPECT_EQ(dram.totalAccesses(), 1u); // one fill only
    EXPECT_GT(t2, 100u);
}

TEST_F(CacheTest, EvictionWritesBackDirtyLine)
{
    // 1 KiB, 2-way, 64 B lines -> 8 sets. Two different lines mapping
    // to set 0 fill both ways; a third evicts the LRU.
    uint64_t t = cache.access(0 * 512, true, 0); // set 0, dirty
    t = cache.access(1 * 512, false, t + 1);     // set 0
    t = cache.access(2 * 512, false, t + 1);     // evicts the dirty way
    EXPECT_EQ(stats.get("l1.writebacks"), 1u);
}

TEST_F(CacheTest, LruKeepsRecentlyUsedLine)
{
    uint64_t t = cache.access(0 * 512, false, 0);
    t = cache.access(1 * 512, false, t + 1);
    t = cache.access(0 * 512, false, t + 1); // refresh line 0
    t = cache.access(2 * 512, false, t + 1); // evicts line 1 (LRU)
    uint64_t hit = cache.access(0 * 512, false, t + 1);
    EXPECT_EQ(hit, t + 1 + 3);
}

TEST_F(CacheTest, ProbeDoesNotAllocate)
{
    EXPECT_FALSE(cache.probe(0x400));
    cache.access(0x400, false, 0);
    EXPECT_TRUE(cache.probe(0x400));
}

TEST_F(CacheTest, ResetDropsEverything)
{
    cache.access(0x80, false, 0);
    cache.reset();
    EXPECT_FALSE(cache.probe(0x80));
}

TEST(Hierarchy, L2BackstopsL1)
{
    StatSet stats;
    HierarchyConfig cfg;
    MemoryHierarchy mem(cfg, stats);
    uint64_t t1 = mem.timedAccess(0x1000, false, 0);
    // cold: L1 miss + LLC miss + DRAM
    EXPECT_GT(t1, 200u);
    uint64_t t2 = mem.timedAccess(0x1000, false, t1 + 1);
    EXPECT_EQ(t2, t1 + 1 + cfg.l1.hitLatency);
    EXPECT_EQ(stats.get("llc.misses"), 1u);
}

TEST(Hierarchy, ScratchpadIsOneCycle)
{
    StatSet stats;
    HierarchyConfig cfg;
    MemoryHierarchy mem(cfg, stats);
    EXPECT_EQ(mem.scratchpadAccess(0x10, false, 7), 8u);
    EXPECT_EQ(stats.get("scratchpad.reads"), 1u);
}

TEST(Hierarchy, ResetClearsFunctionalAndTiming)
{
    StatSet stats;
    HierarchyConfig cfg;
    MemoryHierarchy mem(cfg, stats);
    mem.data().write(0x10, 8, 5);
    mem.timedAccess(0x10, true, 0);
    mem.reset();
    EXPECT_EQ(mem.data().footprint(), 0u);
    EXPECT_FALSE(mem.l1Probe(0x10));
}

} // namespace
} // namespace nachos
