#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

namespace nachos {
namespace {

TEST(BandwidthRegulator, AdmitsPerCycleLimit)
{
    BandwidthRegulator bw(2);
    EXPECT_EQ(bw.admit(10), 10u);
    EXPECT_EQ(bw.admit(10), 10u);
    EXPECT_EQ(bw.admit(10), 11u); // third in the same cycle spills
    EXPECT_EQ(bw.admit(10), 11u); // requests may arrive "late"
    EXPECT_EQ(bw.admit(12), 12u);
}

TEST(MainMemory, FixedLatency)
{
    MainMemory dram(200, 4);
    EXPECT_EQ(dram.access(0, false, 5), 205u);
    EXPECT_EQ(dram.totalAccesses(), 1u);
}

class CacheTest : public ::testing::Test
{
  protected:
    StatSet stats;
    MainMemory dram{100, 8};
    CacheConfig cfg{1024, 2, 64, 3, 4, 2, "l1"};
    Cache cache{cfg, dram, stats};
};

TEST_F(CacheTest, MissThenHit)
{
    uint64_t t1 = cache.access(0x80, false, 0);
    EXPECT_GT(t1, 100u); // went to DRAM
    EXPECT_EQ(stats.get("l1.misses"), 1u);
    uint64_t t2 = cache.access(0x80, false, t1 + 1);
    EXPECT_EQ(t2, t1 + 1 + 3); // hit latency
    EXPECT_EQ(stats.get("l1.hits"), 1u);
}

TEST_F(CacheTest, SameLineDifferentWordHits)
{
    uint64_t t1 = cache.access(0x100, false, 0);
    uint64_t t2 = cache.access(0x138, false, t1 + 1); // same 64B line
    EXPECT_EQ(t2, t1 + 1 + 3);
}

TEST_F(CacheTest, MshrMergesConcurrentMissesToSameLine)
{
    cache.access(0x200, false, 0);
    uint64_t t2 = cache.access(0x208, false, 1); // same line, in flight
    EXPECT_EQ(stats.get("l1.mshrMerges"), 1u);
    EXPECT_EQ(stats.get("l1.misses"), 2u);
    EXPECT_EQ(dram.totalAccesses(), 1u); // one fill only
    EXPECT_GT(t2, 100u);
}

TEST_F(CacheTest, EvictionWritesBackDirtyLine)
{
    // 1 KiB, 2-way, 64 B lines -> 8 sets. Two different lines mapping
    // to set 0 fill both ways; a third evicts the LRU.
    uint64_t t = cache.access(0 * 512, true, 0); // set 0, dirty
    t = cache.access(1 * 512, false, t + 1);     // set 0
    t = cache.access(2 * 512, false, t + 1);     // evicts the dirty way
    EXPECT_EQ(stats.get("l1.writebacks"), 1u);
}

TEST_F(CacheTest, LruKeepsRecentlyUsedLine)
{
    uint64_t t = cache.access(0 * 512, false, 0);
    t = cache.access(1 * 512, false, t + 1);
    t = cache.access(0 * 512, false, t + 1); // refresh line 0
    t = cache.access(2 * 512, false, t + 1); // evicts line 1 (LRU)
    uint64_t hit = cache.access(0 * 512, false, t + 1);
    EXPECT_EQ(hit, t + 1 + 3);
}

TEST_F(CacheTest, ProbeDoesNotAllocate)
{
    EXPECT_FALSE(cache.probe(0x400));
    cache.access(0x400, false, 0);
    EXPECT_TRUE(cache.probe(0x400));
}

TEST_F(CacheTest, ResetDropsEverything)
{
    cache.access(0x80, false, 0);
    cache.reset();
    EXPECT_FALSE(cache.probe(0x80));
}

TEST_F(CacheTest, LruVictimIsOldestUntouchedWay)
{
    // Fill set 0 (2 ways) in a known order, then hit way A so way B is
    // LRU; the next conflict must evict B, not A.
    uint64_t t = cache.access(0 * 512, false, 0);   // way A
    t = cache.access(1 * 512, false, t + 1);        // way B
    t = cache.access(0 * 512, false, t + 1);        // refresh A
    t = cache.access(2 * 512, false, t + 1);        // evicts B
    EXPECT_TRUE(cache.probe(0 * 512));
    EXPECT_FALSE(cache.probe(1 * 512));
    EXPECT_TRUE(cache.probe(2 * 512));
}

TEST_F(CacheTest, MshrMergeTimingIsDeterministic)
{
    // Same access pattern replayed after reset() must produce the same
    // completion cycles and the same stat deltas: reset leaves no
    // residue (pending fills, LRU clocks, bandwidth slots).
    const auto run = [&] {
        std::vector<uint64_t> done;
        uint64_t t = 0;
        done.push_back(cache.access(0x200, false, t));      // miss
        done.push_back(cache.access(0x208, false, t + 1));  // merge
        done.push_back(cache.access(0x240, true, t + 2));   // miss
        done.push_back(cache.access(0x200, false, done[0])); // hit
        done.push_back(cache.access(0x248, true, done[2] + 1));
        return done;
    };
    const std::vector<uint64_t> first = run();
    const uint64_t merges = stats.get("l1.mshrMerges");
    const uint64_t hits = stats.get("l1.hits");
    cache.reset();
    dram.reset();
    const std::vector<uint64_t> second = run();
    EXPECT_EQ(first, second);
    EXPECT_EQ(stats.get("l1.mshrMerges"), 2 * merges);
    EXPECT_EQ(stats.get("l1.hits"), 2 * hits);
}

TEST_F(CacheTest, ResetClearsAllObservableState)
{
    // Dirty a line, leave a fill in flight, advance the LRU clock.
    cache.access(0x80, true, 0);
    cache.access(0x300, false, 1); // fill still pending at reset
    cache.reset();
    dram.reset();
    for (uint64_t a = 0; a < 16; ++a)
        EXPECT_FALSE(cache.probe(a * 64)) << a;
    // A clean re-run starts from cold: same first-access result as a
    // freshly constructed cache over the same next level.
    StatSet fresh_stats;
    MainMemory fresh_dram{100, 8};
    Cache fresh{cfg, fresh_dram, fresh_stats};
    EXPECT_EQ(cache.access(0x80, false, 50), fresh.access(0x80, false, 50));
    // The old dirty line must not write back after reset.
    EXPECT_EQ(stats.get("l1.writebacks"), 0u);
}

TEST(Hierarchy, L2BackstopsL1)
{
    StatSet stats;
    HierarchyConfig cfg;
    MemoryHierarchy mem(cfg, stats);
    uint64_t t1 = mem.timedAccess(0x1000, false, 0);
    // cold: L1 miss + LLC miss + DRAM
    EXPECT_GT(t1, 200u);
    uint64_t t2 = mem.timedAccess(0x1000, false, t1 + 1);
    EXPECT_EQ(t2, t1 + 1 + cfg.l1.hitLatency);
    EXPECT_EQ(stats.get("llc.misses"), 1u);
}

TEST(Hierarchy, ScratchpadIsOneCycle)
{
    StatSet stats;
    HierarchyConfig cfg;
    MemoryHierarchy mem(cfg, stats);
    EXPECT_EQ(mem.scratchpadAccess(0x10, false, 7), 8u);
    EXPECT_EQ(stats.get("scratchpad.reads"), 1u);
}

TEST(Hierarchy, ResetClearsFunctionalAndTiming)
{
    StatSet stats;
    HierarchyConfig cfg;
    MemoryHierarchy mem(cfg, stats);
    mem.data().write(0x10, 8, 5);
    mem.timedAccess(0x10, true, 0);
    mem.reset();
    EXPECT_EQ(mem.data().footprint(), 0u);
    EXPECT_FALSE(mem.l1Probe(0x10));
}

} // namespace
} // namespace nachos
