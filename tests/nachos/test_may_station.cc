#include <gtest/gtest.h>

#include "nachos/may_station.hh"

namespace nachos {
namespace {

class MayStationTest : public ::testing::Test
{
  protected:
    StatSet stats;
};

TEST_F(MayStationTest, NoConflictClearsAfterCompare)
{
    MayCheckStation st(1, stats);
    st.ownAddressReady(0x100, 8, 10);
    EXPECT_FALSE(st.allClearCycle().has_value());
    st.parentAddressArrived(0, 0x200, 8, 12);
    auto clear = st.allClearCycle();
    ASSERT_TRUE(clear.has_value());
    EXPECT_EQ(*clear, 13u); // compare at 12, result at 13
    EXPECT_EQ(st.comparesDone(), 1u);
    EXPECT_EQ(stats.get("nachos.checksClear"), 1u);
}

TEST_F(MayStationTest, ConflictWaitsForParentCompletion)
{
    MayCheckStation st(1, stats);
    st.ownAddressReady(0x100, 8, 5);
    st.parentAddressArrived(0, 0x100, 8, 6);
    EXPECT_FALSE(st.allClearCycle().has_value()); // conflict pending
    st.parentCompleted(0, 40);
    auto clear = st.allClearCycle();
    ASSERT_TRUE(clear.has_value());
    EXPECT_EQ(*clear, 40u);
    EXPECT_EQ(stats.get("nachos.checksConflict"), 1u);
}

TEST_F(MayStationTest, CompletionBeforeCompareHandled)
{
    MayCheckStation st(1, stats);
    st.parentCompleted(0, 8);
    st.parentAddressArrived(0, 0x100, 8, 9);
    EXPECT_FALSE(st.allClearCycle().has_value()); // own addr missing
    st.ownAddressReady(0x100, 8, 20);
    auto clear = st.allClearCycle();
    ASSERT_TRUE(clear.has_value());
    EXPECT_EQ(*clear, 21u); // conflict, but parent already done
}

TEST_F(MayStationTest, ArbiterSerializesOneComparePerCycle)
{
    // Three parents arrive in the same cycle: compares at t, t+1, t+2.
    MayCheckStation st(3, stats);
    st.ownAddressReady(0x100, 8, 10);
    st.parentAddressArrived(0, 0x200, 8, 10);
    st.parentAddressArrived(1, 0x300, 8, 10);
    st.parentAddressArrived(2, 0x400, 8, 10);
    auto clear = st.allClearCycle();
    ASSERT_TRUE(clear.has_value());
    EXPECT_EQ(*clear, 13u); // last compare finishes at 12+1
    EXPECT_EQ(st.comparesDone(), 3u);
}

TEST_F(MayStationTest, HighFanInScalesLinearly)
{
    const uint32_t k = 50;
    MayCheckStation st(k, stats);
    st.ownAddressReady(0x100, 8, 0);
    for (uint32_t p = 0; p < k; ++p)
        st.parentAddressArrived(p, 0x1000 + p * 64, 8, 0);
    auto clear = st.allClearCycle();
    ASSERT_TRUE(clear.has_value());
    EXPECT_EQ(*clear, k); // 50 cycles of serialized checks
}

TEST_F(MayStationTest, StaggeredArrivalsAvoidContention)
{
    MayCheckStation st(2, stats);
    st.ownAddressReady(0x100, 8, 0);
    st.parentAddressArrived(0, 0x200, 8, 5);
    st.parentAddressArrived(1, 0x300, 8, 9);
    auto clear = st.allClearCycle();
    ASSERT_TRUE(clear.has_value());
    EXPECT_EQ(*clear, 10u); // no queueing: each compares on arrival
}

TEST_F(MayStationTest, PartialOverlapIsConflict)
{
    MayCheckStation st(1, stats);
    st.ownAddressReady(0x104, 8, 0);
    st.parentAddressArrived(0, 0x100, 8, 0);
    EXPECT_FALSE(st.allClearCycle().has_value());
    st.parentCompleted(0, 30);
    EXPECT_EQ(*st.allClearCycle(), 30u);
}

TEST_F(MayStationTest, ResetRestoresFreshState)
{
    MayCheckStation st(1, stats);
    st.ownAddressReady(0x100, 8, 0);
    st.parentAddressArrived(0, 0x200, 8, 0);
    ASSERT_TRUE(st.allClearCycle().has_value());
    st.reset();
    EXPECT_FALSE(st.allClearCycle().has_value());
    st.ownAddressReady(0x100, 8, 0);
    st.parentAddressArrived(0, 0x200, 8, 0);
    EXPECT_TRUE(st.allClearCycle().has_value());
}

TEST_F(MayStationTest, ConflictIntrospection)
{
    MayCheckStation st(3, stats);
    st.ownAddressReady(0x100, 8, 0);
    st.parentAddressArrived(0, 0x100, 8, 0); // exact conflict
    st.parentAddressArrived(1, 0x104, 8, 0); // partial conflict
    st.parentAddressArrived(2, 0x900, 8, 0); // disjoint
    ASSERT_TRUE(st.allCompared());
    auto conflicts = st.conflictingParents();
    ASSERT_EQ(conflicts.size(), 2u);
    EXPECT_TRUE(st.exactConflict(0));
    EXPECT_FALSE(st.exactConflict(1)); // overlap but not exact
    EXPECT_FALSE(st.exactConflict(2));
    // Three compares serialize: the last finishes at cycle 3.
    EXPECT_EQ(st.lastCompareDoneCycle(), 3u);
}

TEST_F(MayStationTest, AllComparedFalseWhileWaitingForOwnAddress)
{
    MayCheckStation st(1, stats);
    st.parentAddressArrived(0, 0x200, 8, 2);
    EXPECT_FALSE(st.allCompared());
    st.ownAddressReady(0x100, 8, 5);
    EXPECT_TRUE(st.allCompared());
}

TEST_F(MayStationTest, WideArbiterComparesInParallel)
{
    MayCheckStation wide(4, stats, /*compares_per_cycle=*/4);
    wide.ownAddressReady(0x100, 8, 10);
    for (uint32_t p = 0; p < 4; ++p)
        wide.parentAddressArrived(p, 0x1000 + p * 64, 8, 10);
    ASSERT_TRUE(wide.allClearCycle().has_value());
    EXPECT_EQ(*wide.allClearCycle(), 11u); // all four in one cycle
}

TEST_F(MayStationTest, DeathOnDuplicateEvents)
{
    MayCheckStation st(1, stats);
    st.ownAddressReady(0x100, 8, 0);
    EXPECT_DEATH(st.ownAddressReady(0x100, 8, 1), "twice");
    st.parentAddressArrived(0, 0x200, 8, 0);
    EXPECT_DEATH(st.parentAddressArrived(0, 0x200, 8, 1), "twice");
}

} // namespace
} // namespace nachos
