#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "harness/suite_runner.hh"

namespace nachos {
namespace {

void
expectSameSim(const std::optional<SimResult> &a,
              const std::optional<SimResult> &b,
              const std::string &what)
{
    ASSERT_EQ(a.has_value(), b.has_value()) << what;
    if (!a)
        return;
    EXPECT_EQ(a->cycles, b->cycles) << what;
    EXPECT_EQ(a->maxMlp, b->maxMlp) << what;
    EXPECT_EQ(a->loadValueDigest, b->loadValueDigest) << what;
    EXPECT_DOUBLE_EQ(a->energy.total(), b->energy.total()) << what;
    EXPECT_EQ(a->stats.dump(), b->stats.dump()) << what;
    EXPECT_EQ(a->memImage, b->memImage) << what;
}

void
expectSameOutcome(const RunOutcome &a, const RunOutcome &b,
                  const std::string &what)
{
    EXPECT_EQ(a.region.numOps(), b.region.numOps()) << what;
    EXPECT_EQ(a.region.numMemOps(), b.region.numMemOps()) << what;
    EXPECT_EQ(a.analysis.final().all.may, b.analysis.final().all.may)
        << what;
    EXPECT_EQ(a.analysis.final().enforced.may,
              b.analysis.final().enforced.may)
        << what;
    EXPECT_EQ(a.mdes.size(), b.mdes.size()) << what;
    expectSameSim(a.lsq, b.lsq, what + "/lsq");
    expectSameSim(a.sw, b.sw, what + "/sw");
    expectSameSim(a.nachos, b.nachos, what + "/nachos");
}

// The core determinism contract: fanning the suite out across workers
// is bit-identical to the plain sequential runWorkload loop.
TEST(SuiteRunner, MatchesSequentialRunWorkloadLoop)
{
    RunRequest req;
    req.invocationsOverride = 4;
    SuiteRun par = runSuite(benchmarkSuite(), req, 4);
    ASSERT_EQ(par.outcomes.size(), benchmarkSuite().size());
    for (size_t i = 0; i < benchmarkSuite().size(); ++i) {
        const BenchmarkInfo &info = benchmarkSuite()[i];
        RunOutcome seq = runWorkload(info, req);
        expectSameOutcome(seq, par.outcomes[i], info.shortName);
    }
}

TEST(SuiteRunner, OneThreadEqualsManyThreads)
{
    const std::vector<BenchmarkInfo> subset(
        benchmarkSuite().begin(), benchmarkSuite().begin() + 8);
    RunRequest req;
    req.invocationsOverride = 3;
    SuiteRun one = runSuite(subset, req, 1);
    SuiteRun many = runSuite(subset, req, 8);
    ASSERT_EQ(one.outcomes.size(), subset.size());
    ASSERT_EQ(many.outcomes.size(), subset.size());
    for (size_t i = 0; i < subset.size(); ++i)
        expectSameOutcome(one.outcomes[i], many.outcomes[i],
                          subset[i].shortName);
}

TEST(SuiteRunner, RecordsStageTiming)
{
    const std::vector<BenchmarkInfo> subset(
        benchmarkSuite().begin(), benchmarkSuite().begin() + 3);
    RunRequest req;
    req.invocationsOverride = 2;
    SuiteRun run = runSuite(subset, req, 2);

    EXPECT_EQ(run.timing.get("suite.workloads"), 3u);
    EXPECT_EQ(run.timing.get("suite.threads"), 2u);
    EXPECT_GT(run.timing.get("suite.wallMicros"), 0u);
    EXPECT_GT(run.timing.get("suite.taskMicros"), 0u);
    EXPECT_GT(run.timing.get("stage.simMicros"), 0u);
    // The aggregate equals the sum of its stage parts.
    EXPECT_EQ(run.timing.get("suite.taskMicros"),
              run.timing.get("stage.synthMicros") +
                  run.timing.get("stage.analysisMicros") +
                  run.timing.get("stage.mdeMicros") +
                  run.timing.get("stage.simMicros"));
}

TEST(SuiteRunner, EmptySuiteIsANoop)
{
    SuiteRun run = runSuite({}, RunRequest{}, 2);
    EXPECT_TRUE(run.outcomes.empty());
    EXPECT_EQ(run.timing.get("suite.workloads"), 0u);
}

TEST(SuiteRunner, SuiteThreadsParsesArgv)
{
    {
        const char *argv[] = {"bench", "--threads", "5"};
        EXPECT_EQ(suiteThreads(3, const_cast<char *const *>(argv)),
                  5u);
    }
    {
        const char *argv[] = {"bench", "--threads=12"};
        EXPECT_EQ(suiteThreads(2, const_cast<char *const *>(argv)),
                  12u);
    }
    {
        const char *argv[] = {"bench"};
        EXPECT_GE(suiteThreads(1, const_cast<char *const *>(argv)),
                  1u);
    }
}

} // namespace
} // namespace nachos
