/**
 * Synthesized-region cache: hit/miss behaviour, LRU eviction, the
 * hits + misses == lookups invariant, and — the property the serving
 * plane leans on — that a cache hit hands back a byte-identical,
 * unmutated front end no matter how many simulations ran against it.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cgra/simulator.hh"
#include "harness/batch_run.hh"
#include "harness/region_cache.hh"
#include "harness/runner.hh"
#include "ir/serialize.hh"
#include "workloads/benchmark_info.hh"

namespace nachos {
namespace {

RunRequest
request(uint64_t seed = 1, uint32_t pathIndex = 0)
{
    RunRequest req;
    req.seed = seed;
    req.pathIndex = pathIndex;
    return req;
}

TEST(RegionCache, MissThenHitSameEntry)
{
    RegionCache cache(4);
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    bool hit = true;
    auto first = cache.acquire(info, request(), &hit);
    ASSERT_NE(first, nullptr);
    EXPECT_FALSE(hit);
    auto second = cache.acquire(info, request(), &hit);
    EXPECT_TRUE(hit);
    // A hit is the same immutable entry, not an equal copy.
    EXPECT_EQ(first.get(), second.get());

    const RegionCache::Counters c = cache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.size, 1u);
}

TEST(RegionCache, HitMatchesFreshBuildByteForByte)
{
    RegionCache cache(4);
    const BenchmarkInfo &info = *findBenchmark("179.art");
    cache.acquire(info, request(7));
    auto cached = cache.acquire(info, request(7));
    auto fresh = RegionCache::build(info, request(7));
    EXPECT_EQ(regionToString(cached->region),
              regionToString(fresh->region));
    EXPECT_EQ(cached->digest, fresh->digest);
    EXPECT_EQ(cached->mdes.size(), fresh->mdes.size());
}

TEST(RegionCache, KeyCoversSeedPathAndPipeline)
{
    RegionCache cache(16);
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    cache.acquire(info, request(1));
    bool hit = true;
    cache.acquire(info, request(2), &hit); // different seed
    EXPECT_FALSE(hit);
    RunRequest stage2Off = request(1);
    stage2Off.pipeline.stage2 = false; // different pipeline flags
    cache.acquire(info, stage2Off, &hit);
    EXPECT_FALSE(hit);
    // The original key is still resident.
    cache.acquire(info, request(1), &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.counters().size, 3u);
}

TEST(RegionCache, LruEvictionBeyondCapacity)
{
    RegionCache cache(2);
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    cache.acquire(info, request(1));
    cache.acquire(info, request(2));
    // Touch seed 1 so seed 2 is the LRU victim.
    bool hit = false;
    cache.acquire(info, request(1), &hit);
    EXPECT_TRUE(hit);
    cache.acquire(info, request(3)); // evicts seed 2
    EXPECT_EQ(cache.counters().evictions, 1u);
    EXPECT_EQ(cache.counters().size, 2u);
    cache.acquire(info, request(1), &hit);
    EXPECT_TRUE(hit); // survived
    cache.acquire(info, request(2), &hit);
    EXPECT_FALSE(hit); // evicted: misses again
}

TEST(RegionCache, ZeroCapacityDisablesResidency)
{
    RegionCache cache(0);
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    bool hit = true;
    auto a = cache.acquire(info, request(), &hit);
    EXPECT_FALSE(hit);
    ASSERT_NE(a, nullptr);
    auto b = cache.acquire(info, request(), &hit);
    EXPECT_FALSE(hit); // nothing was stored
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.counters().size, 0u);
    EXPECT_EQ(cache.counters().misses, 2u);
}

// Satellite 3: simulating against a cached entry must not mutate it —
// a later hit serves the same bytes the first request saw.
TEST(RegionCache, SimulationDoesNotMutateCachedEntries)
{
    RegionCache cache(4);
    const BenchmarkInfo &info = *findBenchmark("179.art");
    auto entry = cache.acquire(info, request(3));
    const std::string before = regionToString(entry->region);
    ASSERT_TRUE(RegionCache::entryIntact(*entry));

    // Simulate every backend against the cached front end, twice,
    // through the same batched path the daemon uses.
    BatchSimEngine engine;
    for (int round = 0; round < 2; ++round) {
        RunRequest req = request(3);
        req.invocationsOverride = 2;
        const std::vector<BatchRunItem> items{{&info, &req}};
        const auto results = runBatchedGroup(items, cache, engine);
        ASSERT_EQ(results.size(), 1u);
        EXPECT_TRUE(results[0].cacheHit);
        EXPECT_TRUE(RegionCache::entryIntact(*entry)) << round;
    }
    EXPECT_EQ(regionToString(entry->region), before);
    bool hit = false;
    auto again = cache.acquire(info, request(3), &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(regionToString(again->region), before);
}

// Satellite 2: the cache key is machine-independent by design — the
// synthesized front end (region, analysis, MDEs) doesn't depend on
// cache sizes or LSQ geometry — so two requests that differ only in
// machine overrides share one entry, and the *timing* divergence
// happens downstream in simulate().
TEST(RegionCache, MachineOverridesShareOneEntry)
{
    RegionCache cache(4);
    const BenchmarkInfo &info = *findBenchmark("179.art");

    RunRequest stock = request(3);
    RunRequest tiny = request(3);
    tiny.machine.l1SizeBytes = 16 * 1024;
    tiny.machine.dramLatency = 1000;

    bool hit = true;
    auto first = cache.acquire(info, stock, &hit);
    EXPECT_FALSE(hit);
    auto second = cache.acquire(info, tiny, &hit);
    EXPECT_TRUE(hit); // machine fields must not reach the key
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.counters().size, 1u);

    // Same entry, different machines: simulation results diverge in
    // timing but agree functionally.
    SimConfig stockSim;
    stockSim.invocations = 3;
    SimConfig tinySim = stockSim;
    tiny.machine.applyTo(tinySim);
    const SimResult a = simulate(first->region, first->mdes,
                                 BackendKind::Nachos, stockSim);
    const SimResult b = simulate(second->region, second->mdes,
                                 BackendKind::Nachos, tinySim);
    EXPECT_NE(a.cycles, b.cycles);
    EXPECT_EQ(a.loadValueDigest, b.loadValueDigest);
    EXPECT_TRUE(RegionCache::entryIntact(*first));
}

TEST(RegionCache, HitsPlusMissesEqualsLookups)
{
    RegionCache cache(2);
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    uint64_t lookups = 0;
    for (const uint64_t seed : {1u, 2u, 3u, 1u, 3u, 2u, 2u, 1u}) {
        cache.acquire(info, request(seed));
        ++lookups;
    }
    const RegionCache::Counters c = cache.counters();
    EXPECT_EQ(c.hits + c.misses, lookups);
    EXPECT_LE(c.size, 2u);
}

TEST(RegionCache, ConcurrentAcquiresAgree)
{
    RegionCache cache(8);
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    constexpr int kThreads = 4;
    std::vector<std::string> serialized(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Everyone wants the same two keys; racing builders must
            // converge on consistent bytes.
            auto a = cache.acquire(info, request(1));
            auto b = cache.acquire(info, request(2));
            serialized[static_cast<size_t>(t)] =
                regionToString(a->region) + regionToString(b->region);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(serialized[static_cast<size_t>(t)], serialized[0]);
    const RegionCache::Counters c = cache.counters();
    EXPECT_EQ(c.hits + c.misses,
              static_cast<uint64_t>(2 * kThreads));
    EXPECT_EQ(c.size, 2u);
}

} // namespace
} // namespace nachos
