#include <gtest/gtest.h>

#include "harness/run_json.hh"
#include "harness/runner.hh"
#include "support/json.hh"
#include "workloads/benchmark_info.hh"

namespace nachos {
namespace {

JsonValue
mustParse(const std::string &text)
{
    JsonParseResult r = parseJson(text);
    EXPECT_TRUE(r.ok) << r.error;
    return std::move(r.value);
}

TEST(DecodeRunRequest, FullRequest)
{
    JobSpec spec;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(
        mustParse("{\"workload\":\"179.art\",\"pathIndex\":1,"
                  "\"seed\":7,\"backends\":[\"sw\",\"nachos\"],"
                  "\"pipeline\":{\"stage3\":false},"
                  "\"invocations\":42,\"timeoutMillis\":500,"
                  "\"sleepMillis\":10}"),
        spec, err))
        << err.code << ": " << err.message;
    ASSERT_NE(spec.info, nullptr);
    EXPECT_EQ(spec.info->name, "179.art");
    EXPECT_EQ(spec.request.pathIndex, 1u);
    EXPECT_EQ(spec.request.seed, 7u);
    EXPECT_FALSE(spec.request.runLsq);
    EXPECT_TRUE(spec.request.runSw);
    EXPECT_TRUE(spec.request.runNachos);
    EXPECT_TRUE(spec.request.pipeline.stage2);
    EXPECT_FALSE(spec.request.pipeline.stage3);
    EXPECT_EQ(spec.request.invocationsOverride, 42u);
    EXPECT_EQ(spec.timeoutMillis, 500u);
    EXPECT_EQ(spec.sleepMillis, 10u);
}

TEST(DecodeRunRequest, ShortNameAndDefaults)
{
    JobSpec spec;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(mustParse("{\"workload\":\"art\"}"),
                                 spec, err));
    ASSERT_NE(spec.info, nullptr);
    EXPECT_EQ(spec.info->name, "179.art");
    EXPECT_EQ(spec.request.pathIndex, 0u);
    EXPECT_EQ(spec.request.seed, 1u);
    EXPECT_TRUE(spec.request.runLsq);
    EXPECT_TRUE(spec.request.runSw);
    EXPECT_TRUE(spec.request.runNachos);
    EXPECT_EQ(spec.request.invocationsOverride, 0u);
}

struct BadCase
{
    const char *json;
    const char *code;
};

TEST(DecodeRunRequest, TypedValidationErrors)
{
    const BadCase cases[] = {
        {"[]", "bad_request"},
        {"{}", "bad_request"},
        {"{\"workload\":7}", "bad_request"},
        {"{\"workload\":\"no-such-bench\"}", "unknown_workload"},
        {"{\"workload\":\"art\",\"pathIndex\":5}", "bad_path_index"},
        {"{\"workload\":\"art\",\"pathIndex\":-1}", "bad_path_index"},
        {"{\"workload\":\"art\",\"pathIndex\":\"x\"}",
         "bad_path_index"},
        {"{\"workload\":\"art\",\"seed\":0}", "bad_seed"},
        {"{\"workload\":\"art\",\"seed\":1.5}", "bad_seed"},
        {"{\"workload\":\"art\",\"backends\":[]}", "bad_request"},
        {"{\"workload\":\"art\",\"backends\":[\"gpu\"]}",
         "bad_request"},
        {"{\"workload\":\"art\",\"backends\":[7]}", "bad_request"},
        {"{\"workload\":\"art\",\"pipeline\":{\"stage9\":true}}",
         "bad_request"},
        {"{\"workload\":\"art\",\"pipeline\":{\"stage2\":1}}",
         "bad_request"},
        {"{\"workload\":\"art\",\"invocations\":99999999999}",
         "bad_request"},
        {"{\"workload\":\"art\",\"sleepMillis\":60001}",
         "bad_request"},
        {"{\"workload\":\"art\",\"typo\":1}", "bad_request"},
    };
    for (const BadCase &c : cases) {
        JobSpec spec;
        CodecError err;
        EXPECT_FALSE(decodeRunRequest(mustParse(c.json), spec, err))
            << "accepted: " << c.json;
        EXPECT_EQ(err.code, c.code) << c.json;
        EXPECT_FALSE(err.message.empty()) << c.json;
    }
}

TEST(RunRequest, EncodeDecodeRoundTrip)
{
    JobSpec spec;
    spec.info = findBenchmark("183.equake");
    ASSERT_NE(spec.info, nullptr);
    spec.request.pathIndex = 2;
    spec.request.seed = 99;
    spec.request.runLsq = false;
    spec.request.pipeline.stage4 = false;
    spec.request.invocationsOverride = 17;
    spec.request.batchSim = true;
    spec.timeoutMillis = 250;

    JobSpec decoded;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(encodeRunRequest(spec), decoded, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(decoded.info, spec.info);
    EXPECT_EQ(decoded.request.pathIndex, 2u);
    EXPECT_EQ(decoded.request.seed, 99u);
    EXPECT_FALSE(decoded.request.runLsq);
    EXPECT_TRUE(decoded.request.runSw);
    EXPECT_FALSE(decoded.request.pipeline.stage4);
    EXPECT_EQ(decoded.request.invocationsOverride, 17u);
    EXPECT_TRUE(decoded.request.batchSim);
    EXPECT_EQ(decoded.timeoutMillis, 250u);
    // Round-trips to identical bytes as well.
    EXPECT_EQ(dumpJson(encodeRunRequest(decoded)),
              dumpJson(encodeRunRequest(spec)));
}

TEST(Outcome, EncodeDecodeRoundTripOnRealRun)
{
    const BenchmarkInfo *info = findBenchmark("179.art");
    ASSERT_NE(info, nullptr);
    RunRequest request;
    request.invocationsOverride = 3;
    const RunOutcome outcome = runWorkload(*info, request);
    const JsonValue encoded =
        encodeRunOutcome(*info, request, outcome);

    OutcomeSummary summary;
    CodecError err;
    ASSERT_TRUE(decodeOutcome(encoded, summary, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(summary.workload, "179.art");
    EXPECT_EQ(summary.invocations, 3u);
    // art has real pairwise relations, so the labels must be nonzero.
    EXPECT_GT(summary.labels.no + summary.labels.may +
                  summary.labels.must,
              0u);
    ASSERT_TRUE(summary.lsq.has_value());
    ASSERT_TRUE(summary.sw.has_value());
    ASSERT_TRUE(summary.nachos.has_value());
    EXPECT_GT(summary.nachos->cycles, 0u);
    // Re-encoding the decoded summary is byte-identical (canonical
    // member order + lossless numbers).
    EXPECT_EQ(dumpJson(encodeOutcome(summary)), dumpJson(encoded));
}

TEST(Outcome, DecodeRejectsUnknownMember)
{
    const BenchmarkInfo *info = findBenchmark("gzip");
    ASSERT_NE(info, nullptr);
    RunRequest request;
    request.runLsq = false;
    request.runSw = false;
    request.invocationsOverride = 2;
    JsonValue encoded =
        encodeRunOutcome(*info, request, runWorkload(*info, request));
    encoded.set("extra", 1);
    OutcomeSummary summary;
    CodecError err;
    EXPECT_FALSE(decodeOutcome(encoded, summary, err));
    EXPECT_EQ(err.code, "bad_request");
}

TEST(TimingRecord, StableEncoding)
{
    const JsonValue v =
        encodeTimingRecord("164.gzip", "analysis", 0.1234567891, 4,
                           "abc123");
    EXPECT_EQ(dumpJson(v),
              "{\"workload\":\"164.gzip\",\"stage\":\"analysis\","
              "\"seconds\":0.123457,\"threads\":4,"
              "\"git_sha\":\"abc123\"}");
}

TEST(RunRequest, AdmissionClassRoundTrips)
{
    JobSpec spec;
    spec.info = findBenchmark("164.gzip");
    ASSERT_NE(spec.info, nullptr);
    spec.klass = AdmitClass::Bulk;
    JobSpec decoded;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(encodeRunRequest(spec), decoded, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(decoded.klass, AdmitClass::Bulk);
    // Interactive is the default and is omitted from the encoding.
    spec.klass = AdmitClass::Interactive;
    const JsonValue encoded = encodeRunRequest(spec);
    EXPECT_EQ(encoded.find("class"), nullptr);
    ASSERT_TRUE(decodeRunRequest(encoded, decoded, err));
    EXPECT_EQ(decoded.klass, AdmitClass::Interactive);
}

TEST(Outcome, PartsSummaryMatchesWholeOutcome)
{
    // The daemon's batched path summarizes from cache-entry parts and
    // per-lane SimResults; it must agree with the whole-outcome
    // overload byte for byte.
    const BenchmarkInfo *info = findBenchmark("179.art");
    ASSERT_NE(info, nullptr);
    RunRequest request;
    request.seed = 2;
    request.invocationsOverride = 2;
    const RunOutcome outcome = runWorkload(*info, request);
    const OutcomeSummary whole =
        summarizeOutcome(*info, request, outcome);
    const OutcomeSummary parts = summarizeOutcome(
        *info, request, outcome.analysis, outcome.mdes,
        outcome.lsq ? &*outcome.lsq : nullptr,
        outcome.sw ? &*outcome.sw : nullptr,
        outcome.nachos ? &*outcome.nachos : nullptr);
    EXPECT_EQ(dumpJson(encodeOutcome(parts)),
              dumpJson(encodeOutcome(whole)));
}

TEST(Outcome, WriterEncodingMatchesTreeEncoding)
{
    const BenchmarkInfo *info = findBenchmark("183.equake");
    ASSERT_NE(info, nullptr);
    RunRequest request;
    request.seed = 6;
    request.invocationsOverride = 1;
    const RunOutcome outcome = runWorkload(*info, request);
    const OutcomeSummary summary =
        summarizeOutcome(*info, request, outcome);
    std::string streamed;
    JsonWriter w(streamed);
    encodeOutcomeTo(w, summary);
    EXPECT_EQ(streamed, dumpJson(encodeOutcome(summary)));
}

} // namespace
} // namespace nachos
