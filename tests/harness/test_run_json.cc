#include <gtest/gtest.h>

#include "harness/run_json.hh"
#include "harness/runner.hh"
#include "support/json.hh"
#include "workloads/benchmark_info.hh"

namespace nachos {
namespace {

JsonValue
mustParse(const std::string &text)
{
    JsonParseResult r = parseJson(text);
    EXPECT_TRUE(r.ok) << r.error;
    return std::move(r.value);
}

TEST(DecodeRunRequest, FullRequest)
{
    JobSpec spec;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(
        mustParse("{\"workload\":\"179.art\",\"pathIndex\":1,"
                  "\"seed\":7,\"backends\":[\"sw\",\"nachos\"],"
                  "\"pipeline\":{\"stage3\":false},"
                  "\"invocations\":42,\"timeoutMillis\":500,"
                  "\"sleepMillis\":10}"),
        spec, err))
        << err.code << ": " << err.message;
    ASSERT_NE(spec.info, nullptr);
    EXPECT_EQ(spec.info->name, "179.art");
    EXPECT_EQ(spec.request.pathIndex, 1u);
    EXPECT_EQ(spec.request.seed, 7u);
    EXPECT_FALSE(spec.request.runLsq);
    EXPECT_TRUE(spec.request.runSw);
    EXPECT_TRUE(spec.request.runNachos);
    EXPECT_TRUE(spec.request.pipeline.stage2);
    EXPECT_FALSE(spec.request.pipeline.stage3);
    EXPECT_EQ(spec.request.invocationsOverride, 42u);
    EXPECT_EQ(spec.timeoutMillis, 500u);
    EXPECT_EQ(spec.sleepMillis, 10u);
}

TEST(DecodeRunRequest, ShortNameAndDefaults)
{
    JobSpec spec;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(mustParse("{\"workload\":\"art\"}"),
                                 spec, err));
    ASSERT_NE(spec.info, nullptr);
    EXPECT_EQ(spec.info->name, "179.art");
    EXPECT_EQ(spec.request.pathIndex, 0u);
    EXPECT_EQ(spec.request.seed, 1u);
    EXPECT_TRUE(spec.request.runLsq);
    EXPECT_TRUE(spec.request.runSw);
    EXPECT_TRUE(spec.request.runNachos);
    EXPECT_EQ(spec.request.invocationsOverride, 0u);
}

struct BadCase
{
    const char *json;
    const char *code;
};

TEST(DecodeRunRequest, TypedValidationErrors)
{
    const BadCase cases[] = {
        {"[]", "bad_request"},
        {"{}", "bad_request"},
        {"{\"workload\":7}", "bad_request"},
        {"{\"workload\":\"no-such-bench\"}", "unknown_workload"},
        {"{\"workload\":\"art\",\"pathIndex\":5}", "bad_path_index"},
        {"{\"workload\":\"art\",\"pathIndex\":-1}", "bad_path_index"},
        {"{\"workload\":\"art\",\"pathIndex\":\"x\"}",
         "bad_path_index"},
        {"{\"workload\":\"art\",\"seed\":0}", "bad_seed"},
        {"{\"workload\":\"art\",\"seed\":1.5}", "bad_seed"},
        {"{\"workload\":\"art\",\"backends\":[]}", "bad_request"},
        {"{\"workload\":\"art\",\"backends\":[\"gpu\"]}",
         "bad_request"},
        {"{\"workload\":\"art\",\"backends\":[7]}", "bad_request"},
        {"{\"workload\":\"art\",\"pipeline\":{\"stage9\":true}}",
         "bad_request"},
        {"{\"workload\":\"art\",\"pipeline\":{\"stage2\":1}}",
         "bad_request"},
        {"{\"workload\":\"art\",\"invocations\":99999999999}",
         "bad_request"},
        {"{\"workload\":\"art\",\"sleepMillis\":60001}",
         "bad_request"},
        {"{\"workload\":\"art\",\"typo\":1}", "bad_request"},
    };
    for (const BadCase &c : cases) {
        JobSpec spec;
        CodecError err;
        EXPECT_FALSE(decodeRunRequest(mustParse(c.json), spec, err))
            << "accepted: " << c.json;
        EXPECT_EQ(err.code, c.code) << c.json;
        EXPECT_FALSE(err.message.empty()) << c.json;
    }
}

TEST(RunRequest, EncodeDecodeRoundTrip)
{
    JobSpec spec;
    spec.info = findBenchmark("183.equake");
    ASSERT_NE(spec.info, nullptr);
    spec.request.pathIndex = 2;
    spec.request.seed = 99;
    spec.request.runLsq = false;
    spec.request.pipeline.stage4 = false;
    spec.request.invocationsOverride = 17;
    spec.request.batchSim = true;
    spec.timeoutMillis = 250;

    JobSpec decoded;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(encodeRunRequest(spec), decoded, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(decoded.info, spec.info);
    EXPECT_EQ(decoded.request.pathIndex, 2u);
    EXPECT_EQ(decoded.request.seed, 99u);
    EXPECT_FALSE(decoded.request.runLsq);
    EXPECT_TRUE(decoded.request.runSw);
    EXPECT_FALSE(decoded.request.pipeline.stage4);
    EXPECT_EQ(decoded.request.invocationsOverride, 17u);
    EXPECT_TRUE(decoded.request.batchSim);
    EXPECT_EQ(decoded.timeoutMillis, 250u);
    // Round-trips to identical bytes as well.
    EXPECT_EQ(dumpJson(encodeRunRequest(decoded)),
              dumpJson(encodeRunRequest(spec)));
}

TEST(Outcome, EncodeDecodeRoundTripOnRealRun)
{
    const BenchmarkInfo *info = findBenchmark("179.art");
    ASSERT_NE(info, nullptr);
    RunRequest request;
    request.invocationsOverride = 3;
    const RunOutcome outcome = runWorkload(*info, request);
    const JsonValue encoded =
        encodeRunOutcome(*info, request, outcome);

    OutcomeSummary summary;
    CodecError err;
    ASSERT_TRUE(decodeOutcome(encoded, summary, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(summary.workload, "179.art");
    EXPECT_EQ(summary.invocations, 3u);
    // art has real pairwise relations, so the labels must be nonzero.
    EXPECT_GT(summary.labels.no + summary.labels.may +
                  summary.labels.must,
              0u);
    ASSERT_TRUE(summary.lsq.has_value());
    ASSERT_TRUE(summary.sw.has_value());
    ASSERT_TRUE(summary.nachos.has_value());
    EXPECT_GT(summary.nachos->cycles, 0u);
    // Re-encoding the decoded summary is byte-identical (canonical
    // member order + lossless numbers).
    EXPECT_EQ(dumpJson(encodeOutcome(summary)), dumpJson(encoded));
}

TEST(Outcome, DecodeRejectsUnknownMember)
{
    const BenchmarkInfo *info = findBenchmark("gzip");
    ASSERT_NE(info, nullptr);
    RunRequest request;
    request.runLsq = false;
    request.runSw = false;
    request.invocationsOverride = 2;
    JsonValue encoded =
        encodeRunOutcome(*info, request, runWorkload(*info, request));
    encoded.set("extra", 1);
    OutcomeSummary summary;
    CodecError err;
    EXPECT_FALSE(decodeOutcome(encoded, summary, err));
    EXPECT_EQ(err.code, "bad_request");
}

TEST(TimingRecord, StableEncoding)
{
    const JsonValue v =
        encodeTimingRecord("164.gzip", "analysis", 0.1234567891, 4,
                           "abc123");
    EXPECT_EQ(dumpJson(v),
              "{\"workload\":\"164.gzip\",\"stage\":\"analysis\","
              "\"seconds\":0.123457,\"threads\":4,"
              "\"git_sha\":\"abc123\"}");
}

TEST(RunRequest, AdmissionClassRoundTrips)
{
    JobSpec spec;
    spec.info = findBenchmark("164.gzip");
    ASSERT_NE(spec.info, nullptr);
    spec.klass = AdmitClass::Bulk;
    JobSpec decoded;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(encodeRunRequest(spec), decoded, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(decoded.klass, AdmitClass::Bulk);
    // Interactive is the default and is omitted from the encoding.
    spec.klass = AdmitClass::Interactive;
    const JsonValue encoded = encodeRunRequest(spec);
    EXPECT_EQ(encoded.find("class"), nullptr);
    ASSERT_TRUE(decodeRunRequest(encoded, decoded, err));
    EXPECT_EQ(decoded.klass, AdmitClass::Interactive);
}

TEST(Outcome, PartsSummaryMatchesWholeOutcome)
{
    // The daemon's batched path summarizes from cache-entry parts and
    // per-lane SimResults; it must agree with the whole-outcome
    // overload byte for byte.
    const BenchmarkInfo *info = findBenchmark("179.art");
    ASSERT_NE(info, nullptr);
    RunRequest request;
    request.seed = 2;
    request.invocationsOverride = 2;
    const RunOutcome outcome = runWorkload(*info, request);
    const OutcomeSummary whole =
        summarizeOutcome(*info, request, outcome);
    const OutcomeSummary parts = summarizeOutcome(
        *info, request, outcome.analysis, outcome.mdes,
        outcome.lsq ? &*outcome.lsq : nullptr,
        outcome.sw ? &*outcome.sw : nullptr,
        outcome.nachos ? &*outcome.nachos : nullptr);
    EXPECT_EQ(dumpJson(encodeOutcome(parts)),
              dumpJson(encodeOutcome(whole)));
}

TEST(Outcome, WriterEncodingMatchesTreeEncoding)
{
    const BenchmarkInfo *info = findBenchmark("183.equake");
    ASSERT_NE(info, nullptr);
    RunRequest request;
    request.seed = 6;
    request.invocationsOverride = 1;
    const RunOutcome outcome = runWorkload(*info, request);
    const OutcomeSummary summary =
        summarizeOutcome(*info, request, outcome);
    std::string streamed;
    JsonWriter w(streamed);
    encodeOutcomeTo(w, summary);
    EXPECT_EQ(streamed, dumpJson(encodeOutcome(summary)));
}

TEST(MachineOverrides, DecodeEncodeRoundTrip)
{
    MachineOverrides m;
    CodecError err;
    ASSERT_TRUE(decodeMachineOverrides(
        mustParse("{\"lsqBanks\":8,\"lsqPortsPerBank\":2,"
                  "\"l1SizeBytes\":262144,\"l1Assoc\":8,"
                  "\"l1LineBytes\":32,\"l1Ports\":2,"
                  "\"llcSizeBytes\":8388608,\"dramLatency\":300,"
                  "\"dramRequestsPerCycle\":1,\"netHopsPerCycle\":2,"
                  "\"nachosComparesPerCycle\":4}"),
        m, err))
        << err.code << ": " << err.message;
    EXPECT_TRUE(m.any());
    EXPECT_EQ(m.lsqBanks, 8u);
    EXPECT_EQ(m.l1SizeBytes, 262144u);
    EXPECT_EQ(m.l1LineBytes, 32u);
    EXPECT_EQ(m.nachosComparesPerCycle, 4u);

    MachineOverrides roundTripped;
    ASSERT_TRUE(decodeMachineOverrides(encodeMachineOverrides(m),
                                       roundTripped, err));
    EXPECT_TRUE(roundTripped == m);
    EXPECT_EQ(dumpJson(encodeMachineOverrides(roundTripped)),
              dumpJson(encodeMachineOverrides(m)));
}

TEST(MachineOverrides, EncodeEmitsOnlySetFields)
{
    MachineOverrides m;
    m.lsqBanks = 2;
    const std::string text = dumpJson(encodeMachineOverrides(m));
    EXPECT_EQ(text, "{\"lsqBanks\":2}");
    EXPECT_EQ(dumpJson(encodeMachineOverrides(MachineOverrides{})),
              "{}");
}

TEST(MachineOverrides, TypedValidationErrors)
{
    // Explicit zeros, overflow, cap violations, and geometry violations
    // all come back as the stable `bad_machine` code; an unknown member
    // stays the generic strict-decoding `bad_request`.
    const BadCase cases[] = {
        {"{\"l1Assoc\":0}", "bad_machine"},
        {"{\"lsqBanks\":0}", "bad_machine"},
        {"{\"l1LineBytes\":48}", "bad_machine"},      // not a power of 2
        {"{\"l1LineBytes\":8192}", "bad_machine"},    // over the cap
        {"{\"lsqBanks\":1099511627776}", "bad_machine"}, // overflows u32
        {"{\"lsqBanks\":65}", "bad_machine"},         // over the cap
        {"{\"l1SizeBytes\":2147483648}", "bad_machine"}, // > 1 GiB
        {"{\"dramLatency\":1000001}", "bad_machine"},
        {"{\"l1Assoc\":1.5}", "bad_machine"},
        // Effective geometry: 1 KiB L1 with default assoc*lineBytes
        // (4 * 64 = 256) holds sets, but 128 B does not.
        {"{\"l1SizeBytes\":128}", "bad_machine"},
        // 64 KiB not divisible by assoc 64 * line 2048... (64*2048 =
        // 128 KiB > 64 KiB): zero sets again.
        {"{\"l1Assoc\":64,\"l1LineBytes\":2048}", "bad_machine"},
        {"{\"lsqBanksTypo\":4}", "bad_request"},
        {"[]", "bad_machine"},
    };
    for (const BadCase &c : cases) {
        MachineOverrides m;
        CodecError err;
        EXPECT_FALSE(decodeMachineOverrides(mustParse(c.json), m, err))
            << "accepted: " << c.json;
        EXPECT_EQ(err.code, c.code) << c.json;
        EXPECT_FALSE(err.message.empty()) << c.json;
    }
}

TEST(MachineOverrides, DecodeResetsStaleMembers)
{
    // A reused decode target must not leak fields from a previous
    // decode: the second object sets only l1Assoc, so lsqBanks must
    // come back 0 even though the first decode set it.
    MachineOverrides m;
    CodecError err;
    ASSERT_TRUE(decodeMachineOverrides(
        mustParse("{\"lsqBanks\":8,\"l1Assoc\":8}"), m, err));
    ASSERT_TRUE(decodeMachineOverrides(mustParse("{\"l1Assoc\":2}"), m,
                                       err));
    EXPECT_EQ(m.lsqBanks, 0u);
    EXPECT_EQ(m.l1Assoc, 2u);
}

TEST(MachineOverrides, RunRequestWiresMachineThrough)
{
    // The daemon's steady-state path reuses one parse tree per
    // connection (parseJsonInPlace); decoding a request WITHOUT a
    // machine member after one WITH must reset the overrides.
    JsonValue reuse;
    ASSERT_TRUE(parseJsonInPlace("{\"workload\":\"art\",\"machine\":"
                                 "{\"lsqBanks\":2}}",
                                 reuse)
                    .ok);
    JobSpec spec;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(reuse, spec, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(spec.request.machine.lsqBanks, 2u);

    ASSERT_TRUE(parseJsonInPlace("{\"workload\":\"art\"}", reuse).ok);
    ASSERT_TRUE(decodeRunRequest(reuse, spec, err));
    EXPECT_FALSE(spec.request.machine.any());

    // And a bad machine member fails with the stable code through the
    // full request decoder too.
    ASSERT_TRUE(parseJsonInPlace("{\"workload\":\"art\",\"machine\":"
                                 "{\"l1Assoc\":0}}",
                                 reuse)
                    .ok);
    EXPECT_FALSE(decodeRunRequest(reuse, spec, err));
    EXPECT_EQ(err.code, "bad_machine");
}

TEST(MachineOverrides, RequestRoundTripsWithMachine)
{
    JobSpec spec;
    spec.info = findBenchmark("183.equake");
    ASSERT_NE(spec.info, nullptr);
    spec.request.machine.lsqBanks = 8;
    spec.request.machine.dramLatency = 400;

    JobSpec decoded;
    CodecError err;
    ASSERT_TRUE(decodeRunRequest(encodeRunRequest(spec), decoded, err))
        << err.code << ": " << err.message;
    EXPECT_TRUE(decoded.request.machine == spec.request.machine);
    EXPECT_EQ(dumpJson(encodeRunRequest(decoded)),
              dumpJson(encodeRunRequest(spec)));
}

TEST(MachineOverrides, HashSeparatesConfigs)
{
    MachineOverrides a, b;
    EXPECT_EQ(machineConfigHash(a), machineConfigHash(b));
    b.lsqBanks = 1;
    EXPECT_NE(machineConfigHash(a), machineConfigHash(b));
    a.lsqBanks = 1;
    EXPECT_EQ(machineConfigHash(a), machineConfigHash(b));
    // Different fields with equal values must not collide (the hash
    // mixes position, not just value).
    MachineOverrides c, d;
    c.lsqBanks = 4;
    d.lsqPortsPerBank = 4;
    EXPECT_NE(machineConfigHash(c), machineConfigHash(d));
}

} // namespace
} // namespace nachos
