/**
 * Cross-request batched execution: a coalesced group's per-request
 * results must be byte-identical (digests, cycles, energy — the full
 * encoded outcome) to running each request alone through runWorkload,
 * including groups with mixed backends and uneven invocation counts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/batch_run.hh"
#include "harness/run_json.hh"
#include "harness/runner.hh"
#include "support/json.hh"
#include "workloads/benchmark_info.hh"

namespace nachos {
namespace {

RunRequest
request(uint64_t seed, bool lsq, bool sw, bool nachos,
        uint64_t invocations = 0)
{
    RunRequest req;
    req.seed = seed;
    req.runLsq = lsq;
    req.runSw = sw;
    req.runNachos = nachos;
    req.invocationsOverride = invocations;
    return req;
}

/** The daemon-visible bytes for a batched result. */
std::string
batchedOutcomeJson(const BenchmarkInfo &info, const RunRequest &req,
                   const BatchRunResult &r)
{
    const OutcomeSummary summary = summarizeOutcome(
        info, req, r.entry->analysis, r.entry->mdes,
        r.lsq ? &*r.lsq : nullptr, r.sw ? &*r.sw : nullptr,
        r.nachos ? &*r.nachos : nullptr);
    std::string out;
    JsonWriter w(out);
    encodeOutcomeTo(w, summary);
    return out;
}

/** The same bytes through the direct, unbatched, uncached path. */
std::string
directOutcomeJson(const BenchmarkInfo &info, const RunRequest &req)
{
    const RunOutcome outcome = runWorkload(info, req);
    return dumpJson(encodeRunOutcome(info, req, outcome));
}

TEST(SameRegionWork, KeyFields)
{
    const BenchmarkInfo &gzip = *findBenchmark("164.gzip");
    const BenchmarkInfo &art = *findBenchmark("179.art");
    const RunRequest a = request(1, true, true, true);
    EXPECT_TRUE(sameRegionWork(gzip, a, gzip, a));
    // Backends and invocations may differ within a group...
    EXPECT_TRUE(sameRegionWork(gzip, a, gzip,
                               request(1, false, false, true, 5)));
    // ...but workload, seed, pathIndex, and pipeline flags may not.
    EXPECT_FALSE(sameRegionWork(gzip, a, art, a));
    EXPECT_FALSE(
        sameRegionWork(gzip, a, gzip, request(2, true, true, true)));
    RunRequest otherPath = a;
    otherPath.pathIndex = 1;
    EXPECT_FALSE(sameRegionWork(gzip, a, gzip, otherPath));
    RunRequest stage3Off = a;
    stage3Off.pipeline.stage3 = false;
    EXPECT_FALSE(sameRegionWork(gzip, a, gzip, stage3Off));
}

TEST(BackendLanes, CountsRequestedBackends)
{
    EXPECT_EQ(backendLanes(request(1, true, true, true)), 3u);
    EXPECT_EQ(backendLanes(request(1, false, true, false)), 1u);
    EXPECT_EQ(backendLanes(request(1, false, false, false)), 0u);
}

TEST(BatchRun, SingletonMatchesDirectRunner)
{
    const BenchmarkInfo &info = *findBenchmark("179.art");
    RegionCache cache(4);
    BatchSimEngine engine;
    const RunRequest req = request(3, true, true, true, 2);
    const std::vector<BatchRunItem> items{{&info, &req}};
    const auto results = runBatchedGroup(items, cache, engine);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(batchedOutcomeJson(info, req, results[0]),
              directOutcomeJson(info, req));
}

TEST(BatchRun, CoalescedGroupMatchesDirectRunnerPerRequest)
{
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    RegionCache cache(4);
    BatchSimEngine engine;
    // Mixed backends and uneven invocation counts in one group.
    const std::vector<RunRequest> reqs = {
        request(1, true, true, true, 1),
        request(1, false, false, true, 3),
        request(1, true, false, false, 2),
        request(1, false, true, true, 1),
    };
    std::vector<BatchRunItem> items;
    for (const RunRequest &req : reqs)
        items.push_back({&info, &req});
    const auto results = runBatchedGroup(items, cache, engine);
    ASSERT_EQ(results.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(batchedOutcomeJson(info, reqs[i], results[i]),
                  directOutcomeJson(info, reqs[i]))
            << "request " << i;
    }
}

TEST(BatchRun, MachineHomogeneousGroupMatchesDirectRunner)
{
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    RegionCache cache(4);
    BatchSimEngine engine;
    // Every lane runs on the overridden machine — the coalescer only
    // ever hands runBatchedGroup machine-homogeneous groups, and the
    // batched results must still match the direct runner per request.
    MachineOverrides machine;
    machine.dramLatency = 600;
    machine.lsqBanks = 2;
    std::vector<RunRequest> reqs = {
        request(1, true, true, true, 2),
        request(1, false, true, true, 3),
        request(1, true, false, false, 1),
    };
    for (RunRequest &req : reqs)
        req.machine = machine;
    std::vector<BatchRunItem> items;
    for (const RunRequest &req : reqs)
        items.push_back({&info, &req});
    const auto results = runBatchedGroup(items, cache, engine);
    ASSERT_EQ(results.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(batchedOutcomeJson(info, reqs[i], results[i]),
                  directOutcomeJson(info, reqs[i]))
            << "request " << i;
    }
}

TEST(BatchRun, CacheHitRunMatchesCacheMissRun)
{
    const BenchmarkInfo &info = *findBenchmark("179.art");
    RegionCache cache(4);
    BatchSimEngine engine;
    const RunRequest req = request(5, false, true, true, 2);
    const std::vector<BatchRunItem> items{{&info, &req}};
    const auto miss = runBatchedGroup(items, cache, engine);
    const auto hit = runBatchedGroup(items, cache, engine);
    ASSERT_EQ(miss.size(), 1u);
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_FALSE(miss[0].cacheHit);
    EXPECT_TRUE(hit[0].cacheHit);
    EXPECT_EQ(batchedOutcomeJson(info, req, hit[0]),
              batchedOutcomeJson(info, req, miss[0]));
}

} // namespace
} // namespace nachos
