#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hh"
#include "harness/runner.hh"

namespace nachos {
namespace {

TEST(Runner, RunsAllThreeBackends)
{
    RunRequest req;
    req.invocationsOverride = 4;
    RunOutcome out = runWorkload(benchmarkByName("parser"), req);
    ASSERT_TRUE(out.lsq && out.sw && out.nachos);
    EXPECT_GT(out.lsq->cycles, 0u);
    EXPECT_GT(out.sw->cycles, 0u);
    EXPECT_GT(out.nachos->cycles, 0u);
}

TEST(Runner, BackendsAgreeFunctionallyOnWorkloads)
{
    for (const char *name : {"parser", "art", "bodytrack", "sjeng"}) {
        RunRequest req;
        req.invocationsOverride = 5;
        RunOutcome out = runWorkload(benchmarkByName(name), req);
        EXPECT_EQ(out.lsq->loadValueDigest, out.sw->loadValueDigest)
            << name;
        EXPECT_EQ(out.sw->loadValueDigest, out.nachos->loadValueDigest)
            << name;
        EXPECT_EQ(out.lsq->memImage, out.nachos->memImage) << name;
    }
}

TEST(Runner, SelectiveBackends)
{
    RunRequest req;
    req.runLsq = false;
    req.runSw = false;
    req.invocationsOverride = 2;
    RunOutcome out = runWorkload(benchmarkByName("gzip"), req);
    EXPECT_FALSE(out.lsq.has_value());
    EXPECT_FALSE(out.sw.has_value());
    EXPECT_TRUE(out.nachos.has_value());
}

TEST(Runner, BatchedSimMatchesSequential)
{
    for (const char *name : {"parser", "gzip"}) {
        RunRequest req;
        req.invocationsOverride = 4;
        RunOutcome seq = runWorkload(benchmarkByName(name), req);
        req.batchSim = true;
        RunOutcome batched = runWorkload(benchmarkByName(name), req);
        ASSERT_TRUE(batched.lsq && batched.sw && batched.nachos)
            << name;
        for (auto pick : {&RunOutcome::lsq, &RunOutcome::sw,
                          &RunOutcome::nachos}) {
            const SimResult &a = *((batched.*pick));
            const SimResult &b = *((seq.*pick));
            EXPECT_EQ(a.cycles, b.cycles) << name;
            EXPECT_EQ(a.loadValueDigest, b.loadValueDigest) << name;
            EXPECT_EQ(a.memImage, b.memImage) << name;
            EXPECT_EQ(a.stats.dump(), b.stats.dump()) << name;
        }
    }
}

TEST(Runner, BatchedSelectiveBackends)
{
    RunRequest req;
    req.runLsq = false;
    req.batchSim = true;
    req.invocationsOverride = 2;
    RunOutcome out = runWorkload(benchmarkByName("gzip"), req);
    EXPECT_FALSE(out.lsq.has_value());
    EXPECT_TRUE(out.sw.has_value());
    EXPECT_TRUE(out.nachos.has_value());
}

TEST(Runner, MachineOverridesChangeTiming)
{
    RunRequest base;
    base.invocationsOverride = 4;
    const RunOutcome stock = runWorkload(benchmarkByName("art"), base);

    RunRequest slow = base;
    slow.machine.dramLatency = 2000; // default is 200
    const RunOutcome far = runWorkload(benchmarkByName("art"), slow);

    ASSERT_TRUE(stock.nachos && far.nachos);
    EXPECT_GT(far.nachos->cycles, stock.nachos->cycles);
    // Timing moved but the program didn't: same values flowed.
    EXPECT_EQ(far.nachos->loadValueDigest,
              stock.nachos->loadValueDigest);
}

TEST(Runner, MachineOverridesAtDefaultsAreInert)
{
    RunRequest base;
    base.invocationsOverride = 3;
    const RunOutcome stock = runWorkload(benchmarkByName("gzip"), base);

    // Explicitly restating the Figure-3 defaults must be a no-op.
    RunRequest same = base;
    same.machine.lsqBanks = 4;
    same.machine.dramLatency = 200;
    same.machine.l1SizeBytes = 64 * 1024;
    const RunOutcome spelled =
        runWorkload(benchmarkByName("gzip"), same);

    ASSERT_TRUE(stock.lsq && spelled.lsq);
    EXPECT_EQ(spelled.lsq->cycles, stock.lsq->cycles);
    EXPECT_EQ(spelled.lsq->loadValueDigest,
              stock.lsq->loadValueDigest);
    EXPECT_EQ(spelled.lsq->energy.total(), stock.lsq->energy.total());
}

TEST(Runner, AnalyzeRegionOnly)
{
    Region r = synthesizeRegion(benchmarkByName("gcc"));
    RunOutcome out = analyzeRegion(std::move(r));
    EXPECT_FALSE(out.lsq.has_value());
    EXPECT_EQ(out.analysis.final().all.may, 0u);
}

TEST(Runner, PctDelta)
{
    EXPECT_DOUBLE_EQ(pctDelta(100, 150), 50.0);
    EXPECT_DOUBLE_EQ(pctDelta(100, 80), -20.0);
    EXPECT_DOUBLE_EQ(pctDelta(0, 5), 0.0);
}

TEST(Report, HeaderAndBarsRender)
{
    std::ostringstream os;
    printHeader(os, "F15", "NACHOS vs OPT-LSQ");
    printBars(os,
              {{"gzip", 1.5, "note"},
               {"bzip2", -8.0, ""},
               {"povray", 70.0, ""}},
              "%");
    std::string s = os.str();
    EXPECT_NE(s.find("F15"), std::string::npos);
    EXPECT_NE(s.find("gzip"), std::string::npos);
    EXPECT_NE(s.find("<"), std::string::npos); // negative bar
    EXPECT_NE(s.find(">"), std::string::npos); // positive bar
    EXPECT_NE(s.find("note"), std::string::npos);
}

TEST(Report, BarsClampExtremeValues)
{
    std::ostringstream os;
    printBars(os, {{"a", 1000.0, ""}, {"b", 1.0, ""}}, "%", 100.0);
    EXPECT_NE(os.str().find("1000.0"), std::string::npos);
}

} // namespace
} // namespace nachos
