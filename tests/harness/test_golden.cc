/**
 * Golden-anchored correctness: every ordering backend must match a
 * strict program-order functional execution — not just each other —
 * on hand-built regions, randomized regions, and the full suite.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "harness/golden.hh"
#include "mde/inserter.hh"
#include "testing/region_gen.hh"
#include "workloads/suite.hh"

namespace nachos {
namespace {

void
expectGoldenMatch(const Region &region, uint64_t invocations)
{
    GoldenResult golden = goldenExecute(region, invocations);
    AliasAnalysisResult analysis = runAliasPipeline(region);
    MdeSet mdes = insertMdes(region, analysis.matrix);
    SimConfig cfg;
    cfg.invocations = invocations;
    for (BackendKind kind : {BackendKind::OptLsq, BackendKind::NachosSw,
                             BackendKind::Nachos}) {
        SimResult res = simulate(region, mdes, kind, cfg);
        EXPECT_EQ(res.loadValueDigest, golden.loadValueDigest)
            << region.name() << " under " << backendName(kind);
        EXPECT_EQ(res.memImage, golden.memImage)
            << region.name() << " under " << backendName(kind);
    }
}

TEST(Golden, ForwardingChainMatchesProgramOrder)
{
    RegionBuilder b("chain");
    ObjectId a = b.object("A", 4096);
    OpId v = b.liveIn();
    b.store(b.at(a, 0), v);
    OpId l1 = b.load(b.at(a, 0));
    OpId x = b.iadd(l1, v);
    b.store(b.at(a, 0), x);
    OpId l2 = b.load(b.at(a, 0));
    b.liveOut(l2);
    expectGoldenMatch(b.build(), 5);
}

TEST(Golden, ConflictingMayMatchesProgramOrder)
{
    RegionBuilder b("mayconf");
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a, 0);
    ParamId q = b.pointerParam("q", a, 0);
    OpId v = b.liveIn();
    b.store(b.atParam(p, 0), v);
    OpId ld = b.load(b.atParam(q, 0));
    b.store(b.atParam(q, 8), ld);
    expectGoldenMatch(b.build(), 5);
}

class GoldenRandom : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(GoldenRandom, BackendsMatchGolden)
{
    testing::RandomRegionOptions opts;
    opts.storeFraction = 0.6;
    Region r = testing::randomRegion(GetParam() + 5000, opts);
    expectGoldenMatch(r, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenRandom,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

class GoldenSuite : public ::testing::TestWithParam<size_t>
{};

TEST_P(GoldenSuite, WorkloadMatchesGolden)
{
    const BenchmarkInfo &info = benchmarkSuite()[GetParam()];
    Region r = synthesizeRegion(info);
    expectGoldenMatch(r, 6);
}

INSTANTIATE_TEST_SUITE_P(All27, GoldenSuite,
                         ::testing::Range(size_t{0}, size_t{27}));

TEST(Golden, DigestSensitiveToOrderingViolation)
{
    // Sanity: executing the stores of a ST-ST pair in the wrong order
    // yields a different memory image than golden.
    RegionBuilder b("violate");
    ObjectId a = b.object("A", 4096);
    OpId v1 = b.constant(1);
    OpId v2 = b.constant(2);
    b.store(b.at(a, 0), v1);
    b.store(b.at(a, 0), v2);
    Region r = b.build();

    GoldenResult golden = goldenExecute(r, 1);
    FunctionalMemory wrong;
    wrong.write(r.object(a).baseAddr, 8, 2);
    wrong.write(r.object(a).baseAddr, 8, 1); // reversed commit order
    EXPECT_NE(golden.memImage, wrong.image());
}

} // namespace
} // namespace nachos
