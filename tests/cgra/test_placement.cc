#include <gtest/gtest.h>

#include "cgra/network.hh"
#include "cgra/placement.hh"
#include "ir/builder.hh"

namespace nachos {
namespace {

Region
chainRegion(int length)
{
    RegionBuilder b("chain");
    OpId v = b.liveIn();
    for (int i = 0; i < length; ++i)
        v = b.iadd(v, v);
    b.liveOut(v);
    return b.build();
}

TEST(Placement, LevelsFollowDataflowDepth)
{
    Region r = chainRegion(5);
    Placement p(r);
    EXPECT_EQ(p.levelOf(0), 0u);
    EXPECT_EQ(p.levelOf(1), 1u);
    EXPECT_EQ(p.levelOf(5), 5u);
    EXPECT_EQ(p.depth(), 7u); // livein + 5 adds + liveout
}

TEST(Placement, ConsecutiveChainOpsStayLocal)
{
    Region r = chainRegion(10);
    Placement p(r);
    for (OpId op = 1; op < 10; ++op)
        EXPECT_LE(p.hops(op, op + 1), 4u);
}

TEST(Placement, DistinctCellsUpToGridCapacity)
{
    Region r = chainRegion(20);
    Placement p(r, {8, 8});
    for (OpId a = 0; a < r.numOps(); ++a) {
        for (OpId b = a + 1; b < r.numOps(); ++b) {
            if (b - a < 64) {
                EXPECT_GT(p.hops(a, b), 0u)
                    << "ops " << a << "," << b << " share a cell";
            }
        }
    }
}

TEST(Placement, WrapsWhenRegionExceedsGrid)
{
    Region r = chainRegion(40);
    Placement p(r, {4, 4}); // 16 cells < 42 ops
    // No panic; coordinates stay in range.
    for (OpId op = 0; op < r.numOps(); ++op) {
        Coord c = p.coordOf(op);
        EXPECT_LT(c.row, 4u);
        EXPECT_LT(c.col, 4u);
    }
}

TEST(Network, LatencyScalesWithDistance)
{
    Region r = chainRegion(40);
    Placement p(r);
    StatSet stats;
    NetworkConfig cfg;
    OperandNetwork net(p, cfg, stats);
    // Adjacent ops: minimum latency.
    EXPECT_EQ(net.latency(1, 2), cfg.minLatency);
    // Distant ops: more cycles.
    uint64_t far = net.latency(0, 39);
    EXPECT_GE(far, net.latency(0, 5));
}

TEST(Network, TransferCountsHops)
{
    Region r = chainRegion(4);
    Placement p(r);
    StatSet stats;
    OperandNetwork net(p, {4, 1}, stats);
    net.countTransfer(0, 1);
    EXPECT_EQ(stats.get("net.hops"), p.hops(0, 1));
}

} // namespace
} // namespace nachos
