#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"

namespace nachos {
namespace {

SimResult
run(const Region &r, BackendKind kind, SimConfig cfg)
{
    AliasAnalysisResult analysis = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, analysis.matrix);
    return simulate(r, mdes, kind, cfg);
}

/** A MAY ST->LD pair that truly conflicts (exact match). */
Region
conflictingMayRegion()
{
    RegionBuilder b("rtfwd");
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a, 0);
    ParamId q = b.pointerParam("q", a, 0); // same location, MAY
    OpId v = b.constant(0x77);
    b.store(b.atParam(p, 0), v);
    OpId ld = b.load(b.atParam(q, 0));
    b.liveOut(ld);
    return b.build();
}

TEST(NachosRuntimeForwarding, ForwardsOnConfirmedExactConflict)
{
    Region r = conflictingMayRegion();
    SimConfig cfg;
    cfg.invocations = 4;
    SimResult hw = run(r, BackendKind::Nachos, cfg);
    EXPECT_GT(hw.stats.get("nachos.runtimeForwards"), 0u);
    // The load never touched the cache.
    EXPECT_EQ(hw.stats.get("l1.reads"), 0u);

    // Values still match the LSQ's (which also forwards from the SQ).
    SimResult lsq = run(r, BackendKind::OptLsq, cfg);
    EXPECT_EQ(hw.loadValueDigest, lsq.loadValueDigest);
    EXPECT_EQ(hw.memImage, lsq.memImage);
}

TEST(NachosRuntimeForwarding, DisabledFlagFallsBackToOrdering)
{
    Region r = conflictingMayRegion();
    SimConfig cfg;
    cfg.invocations = 4;
    cfg.nachosRuntimeForwarding = false;
    SimResult hw = run(r, BackendKind::Nachos, cfg);
    EXPECT_EQ(hw.stats.get("nachos.runtimeForwards"), 0u);
    EXPECT_GT(hw.stats.get("l1.reads"), 0u); // load went to memory

    SimConfig on;
    on.invocations = 4;
    SimResult fwd = run(r, BackendKind::Nachos, on);
    EXPECT_EQ(hw.loadValueDigest, fwd.loadValueDigest);
    // Forwarding shortens the load's wait (store completion elided).
    EXPECT_LE(fwd.cycles, hw.cycles);
}

TEST(NachosRuntimeForwarding, NoForwardWhenTwoParentsConflict)
{
    // Two MAY stores to the same address as the load: multi-source
    // forwarding is unsafe, so NACHOS must fall back to ordering.
    RegionBuilder b("multi");
    ObjectId a = b.object("A", 4096);
    ParamId p1 = b.pointerParam("p1", a, 0);
    ParamId p2 = b.pointerParam("p2", a, 0);
    ParamId q = b.pointerParam("q", a, 0);
    OpId v1 = b.constant(1);
    OpId v2 = b.constant(2);
    b.store(b.atParam(p1, 0), v1);
    b.store(b.atParam(p2, 0), v2);
    OpId ld = b.load(b.atParam(q, 0));
    b.liveOut(ld);
    Region r = b.build();

    SimConfig cfg;
    cfg.invocations = 3;
    SimResult hw = run(r, BackendKind::Nachos, cfg);
    EXPECT_EQ(hw.stats.get("nachos.runtimeForwards"), 0u);
    SimResult lsq = run(r, BackendKind::OptLsq, cfg);
    EXPECT_EQ(hw.loadValueDigest, lsq.loadValueDigest);
}

TEST(NachosRuntimeForwarding, NoForwardOnPartialConflict)
{
    RegionBuilder b("partial");
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a, 0);
    ParamId q = b.pointerParam("q", a, 4); // overlapping, not exact
    OpId v = b.constant(0x1234);
    b.store(b.atParam(p, 0), v, 8);
    OpId ld = b.load(b.atParam(q, 0), 8);
    b.liveOut(ld);
    Region r = b.build();

    SimConfig cfg;
    cfg.invocations = 3;
    SimResult hw = run(r, BackendKind::Nachos, cfg);
    EXPECT_EQ(hw.stats.get("nachos.runtimeForwards"), 0u);
    SimResult lsq = run(r, BackendKind::OptLsq, cfg);
    EXPECT_EQ(hw.loadValueDigest, lsq.loadValueDigest);
    EXPECT_EQ(hw.memImage, lsq.memImage);
}

TEST(SwBackend, OrderTokensCounted)
{
    RegionBuilder b("tokens");
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.load(b.at(a, 0));      // 0
    b.store(b.at(a, 0), v);  // 1: LD->ST order
    Region r = b.build();

    SimConfig cfg;
    cfg.invocations = 5;
    SimResult sw = run(r, BackendKind::NachosSw, cfg);
    EXPECT_EQ(sw.stats.get("mde.orderTokens"), 5u);
}

TEST(SwBackend, MayEdgeCountsAsOrderToken)
{
    RegionBuilder b("mayorder");
    ObjectId a = b.object("A", 1 << 16);
    ObjectId c = b.object("C", 1 << 16);
    ParamId p = b.pointerParam("p", a);
    ParamId q = b.pointerParam("q", c);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v);
    b.load(b.atParam(q, 0));
    Region r = b.build();

    SimConfig cfg;
    cfg.invocations = 3;
    SimResult sw = run(r, BackendKind::NachosSw, cfg);
    // SW serializes the MAY pair with a 1-bit token, not a check.
    EXPECT_EQ(sw.stats.get("mde.orderTokens"), 3u);
    EXPECT_EQ(sw.stats.get("mde.mayChecks"), 0u);

    SimResult hw = run(r, BackendKind::Nachos, cfg);
    EXPECT_EQ(hw.stats.get("mde.mayChecks"), 3u);
    EXPECT_EQ(hw.stats.get("mde.orderTokens"), 0u);
}

TEST(LsqBackend, ParkedLoadWaitsForStoreData)
{
    // The store's data is behind a long FP chain; a same-address load
    // must receive exactly that value via SQ forwarding.
    RegionBuilder b("parked");
    ObjectId a = b.object("A", 4096);
    OpId x = b.constant(3);
    OpId y = b.constant(5);
    OpId slow = b.fdiv(x, y); // 12-cycle FU
    OpId slow2 = b.fdiv(slow, x);
    b.store(b.at(a, 0), slow2);
    OpId ld = b.load(b.at(a, 0));
    b.liveOut(ld);
    Region r = b.build();

    SimConfig cfg;
    cfg.invocations = 2;
    SimResult lsq = run(r, BackendKind::OptLsq, cfg);
    EXPECT_GT(lsq.stats.get("lsq.forwards"), 0u);
    SimResult sw = run(r, BackendKind::NachosSw, cfg);
    EXPECT_EQ(lsq.loadValueDigest, sw.loadValueDigest);
}

TEST(LsqBackend, CommitWaiterReadsStoreValue)
{
    // Partial overlap: the load must wait for the store commit and
    // read merged bytes from memory.
    RegionBuilder b("commitwait");
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(0x0102030405060708LL);
    b.store(b.at(a, 0), v, 8);
    OpId ld = b.load(b.at(a, 4), 8);
    b.liveOut(ld);
    Region r = b.build();

    SimConfig cfg;
    cfg.invocations = 2;
    SimResult lsq = run(r, BackendKind::OptLsq, cfg);
    SimResult sw = run(r, BackendKind::NachosSw, cfg);
    SimResult hw = run(r, BackendKind::Nachos, cfg);
    EXPECT_EQ(lsq.loadValueDigest, sw.loadValueDigest);
    EXPECT_EQ(sw.loadValueDigest, hw.loadValueDigest);
}

TEST(Backends, ComparatorWidthNeverChangesValues)
{
    Region r = conflictingMayRegion();
    SimConfig w1, w8;
    w1.invocations = w8.invocations = 4;
    w1.nachosComparesPerCycle = 1;
    w8.nachosComparesPerCycle = 8;
    SimResult a = run(r, BackendKind::Nachos, w1);
    SimResult b2 = run(r, BackendKind::Nachos, w8);
    EXPECT_EQ(a.loadValueDigest, b2.loadValueDigest);
    EXPECT_EQ(a.memImage, b2.memImage);
    EXPECT_LE(b2.cycles, a.cycles);
}

} // namespace
} // namespace nachos
