#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"

namespace nachos {
namespace {

SimConfig
smallConfig(uint64_t invocations = 4)
{
    SimConfig cfg;
    cfg.invocations = invocations;
    return cfg;
}

SimResult
runRegion(const Region &r, BackendKind kind, uint64_t invocations = 4)
{
    AliasAnalysisResult analysis = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, analysis.matrix);
    return simulate(r, mdes, kind, smallConfig(invocations));
}

Region
computeOnlyRegion()
{
    RegionBuilder b("compute");
    OpId x = b.liveIn();
    OpId y = b.liveIn();
    OpId s = b.iadd(x, y);
    OpId t = b.imul(s, x);
    b.liveOut(t);
    return b.build();
}

TEST(Simulator, ComputeOnlyRunsUnderEveryBackend)
{
    Region r = computeOnlyRegion();
    for (BackendKind kind : {BackendKind::OptLsq, BackendKind::NachosSw,
                             BackendKind::Nachos}) {
        SimResult res = runRegion(r, kind);
        EXPECT_GT(res.cycles, 0u) << backendName(kind);
        EXPECT_EQ(res.stats.get("fu.intOps"), 2u * 4) // 2 ops x 4 inv
            << backendName(kind);
        EXPECT_EQ(res.maxMlp, 0u);
    }
}

TEST(Simulator, DeterministicAcrossRuns)
{
    Region r = computeOnlyRegion();
    SimResult a = runRegion(r, BackendKind::Nachos);
    SimResult b = runRegion(r, BackendKind::Nachos);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.loadValueDigest, b.loadValueDigest);
}

TEST(Simulator, IndependentLoadsOverlapInTime)
{
    RegionBuilder b("mlp");
    ObjectId o1 = b.object("A", 1 << 16);
    ObjectId o2 = b.object("B", 1 << 16);
    ObjectId o3 = b.object("C", 1 << 16);
    b.load(b.at(o1, 0));
    b.load(b.at(o2, 0));
    b.load(b.at(o3, 0));
    Region r = b.build();

    SimResult res = runRegion(r, BackendKind::Nachos, 2);
    EXPECT_GE(res.maxMlp, 3u);
}

TEST(Simulator, StLdForwardingElidesCacheRead)
{
    RegionBuilder b("fwd");
    ObjectId a = b.object("A", 4096);
    OpId v = b.liveIn();
    b.store(b.at(a, 0), v);
    OpId ld = b.load(b.at(a, 0));
    b.liveOut(ld);
    Region r = b.build();

    SimResult sw = runRegion(r, BackendKind::NachosSw, 4);
    // 4 invocations: 4 store writes, zero load reads (forwarded).
    EXPECT_EQ(sw.stats.get("l1.writes"), 4u);
    EXPECT_EQ(sw.stats.get("l1.reads"), 0u);
    EXPECT_EQ(sw.stats.get("mde.forwards"), 4u);
}

TEST(Simulator, ForwardedValueMatchesStoredValue)
{
    RegionBuilder b("fwdval");
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(0x5a5a);
    b.store(b.at(a, 0), v);
    OpId ld = b.load(b.at(a, 0));
    b.liveOut(ld);
    Region r = b.build();

    // Under the LSQ the load forwards from the SQ; under SW/NACHOS it
    // forwards over the F edge; all must read 0x5a5a.
    SimResult lsq = runRegion(r, BackendKind::OptLsq, 2);
    SimResult sw = runRegion(r, BackendKind::NachosSw, 2);
    SimResult hw = runRegion(r, BackendKind::Nachos, 2);
    EXPECT_EQ(lsq.loadValueDigest, sw.loadValueDigest);
    EXPECT_EQ(sw.loadValueDigest, hw.loadValueDigest);
}

TEST(Simulator, OrderEdgeSerializesConflictingStores)
{
    RegionBuilder b("stst");
    ObjectId a = b.object("A", 4096);
    OpId v1 = b.constant(1);
    OpId v2 = b.constant(2);
    b.store(b.at(a, 0), v1);
    b.store(b.at(a, 0), v2);
    Region r = b.build();

    for (BackendKind kind : {BackendKind::OptLsq, BackendKind::NachosSw,
                             BackendKind::Nachos}) {
        SimResult res = runRegion(r, kind, 1);
        // Final value must be the younger store's.
        FunctionalMemory check;
        for (auto [addr, byte] : res.memImage)
            check.write(addr, 1, byte);
        EXPECT_EQ(check.read(r.object(a).baseAddr, 8), 2)
            << backendName(kind);
    }
}

TEST(Simulator, MayConflictOrderedByNachosHardware)
{
    // Two params that actually point to the same object location:
    // the compiler says MAY; NACHOS's comparator finds the conflict
    // and orders the pair.
    RegionBuilder b("mayconflict");
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a, 0);
    ParamId q = b.pointerParam("q", a, 0);
    OpId v = b.constant(7);
    b.store(b.atParam(p, 0), v);
    OpId ld = b.load(b.atParam(q, 0));
    b.liveOut(ld);
    Region r = b.build();

    SimResult hw = runRegion(r, BackendKind::Nachos, 2);
    EXPECT_GT(hw.stats.get("nachos.checksConflict"), 0u);

    SimResult lsq = runRegion(r, BackendKind::OptLsq, 2);
    EXPECT_EQ(hw.loadValueDigest, lsq.loadValueDigest);
}

TEST(Simulator, MayNoConflictRunsParallelUnderNachos)
{
    // Params to distinct objects without provenance: MAY at compile
    // time, disjoint at run time. NACHOS clears the check; SW
    // serializes.
    RegionBuilder b("maypar");
    ObjectId a = b.object("A", 1 << 16);
    ObjectId c = b.object("C", 1 << 16);
    ParamId p = b.pointerParam("p", a, 0);
    ParamId q = b.pointerParam("q", c, 0);
    OpId v = b.constant(7);
    b.store(b.atParam(p, 0), v);
    OpId ld = b.load(b.atParam(q, 0));
    b.liveOut(ld);
    Region r = b.build();

    SimResult hw = runRegion(r, BackendKind::Nachos, 4);
    SimResult sw = runRegion(r, BackendKind::NachosSw, 4);
    EXPECT_GT(hw.stats.get("nachos.checksClear"), 0u);
    EXPECT_LT(hw.cycles, sw.cycles); // parallelism recovered
    EXPECT_EQ(hw.loadValueDigest, sw.loadValueDigest);
}

TEST(Simulator, LsqAddsLoadToUseLatencyOnHits)
{
    // Independent hot loads: all schemes hit in the cache, but the LSQ
    // pays allocate+search on the load path.
    RegionBuilder b("loaduse");
    ObjectId a = b.object("A", 4096);
    OpId l0 = b.load(b.at(a, 0));
    OpId l1 = b.load(b.at(a, 8));
    OpId s = b.iadd(l0, l1);
    b.liveOut(s);
    Region r = b.build();

    SimResult lsq = runRegion(r, BackendKind::OptLsq, 50);
    SimResult sw = runRegion(r, BackendKind::NachosSw, 50);
    SimResult hw = runRegion(r, BackendKind::Nachos, 50);
    EXPECT_LT(sw.cycles, lsq.cycles);
    EXPECT_LT(hw.cycles, lsq.cycles);
}

TEST(Simulator, ScratchpadOpsBypassOrdering)
{
    RegionBuilder b("scratch");
    ObjectId loc = b.localObject("L", 512);
    OpId v = b.constant(3);
    b.scratchStore(loc, 0, v);
    OpId ld = b.scratchLoad(loc, 64);
    b.liveOut(ld);
    Region r = b.build();

    SimResult res = runRegion(r, BackendKind::OptLsq, 2);
    EXPECT_EQ(res.stats.get("scratchpad.writes"), 2u);
    EXPECT_EQ(res.stats.get("lsq.allocs"), 0u);
    EXPECT_EQ(res.stats.get("l1.reads"), 0u);
}

TEST(Simulator, EnergyCountersPopulated)
{
    RegionBuilder b("energy");
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a, 512);
    OpId v = b.liveIn();
    OpId w = b.fmul(v, v);
    b.store(b.at(a, 0), w);
    b.load(b.atParam(p, 0));
    Region r = b.build();

    SimResult lsq = runRegion(r, BackendKind::OptLsq, 3);
    EXPECT_GT(lsq.stats.get("lsq.bloomProbes"), 0u);
    EXPECT_GT(lsq.stats.get("fu.fpOps"), 0u);
    EXPECT_GT(lsq.stats.get("net.transfers"), 0u);
    EXPECT_GT(lsq.energy.lsqBloom, 0.0);
    EXPECT_GT(lsq.energy.compute, 0.0);
    EXPECT_GT(lsq.energy.l1, 0.0);
    EXPECT_EQ(lsq.energy.mde, 0.0);

    SimResult hw = runRegion(r, BackendKind::Nachos, 3);
    EXPECT_GT(hw.stats.get("mde.mayChecks"), 0u);
    EXPECT_GT(hw.energy.mde, 0.0);
    EXPECT_EQ(hw.stats.get("lsq.bloomProbes"), 0u);
}

TEST(Simulator, InvocationsAccumulateCycles)
{
    Region r = computeOnlyRegion();
    SimResult one = runRegion(r, BackendKind::Nachos, 1);
    SimResult four = runRegion(r, BackendKind::Nachos, 4);
    EXPECT_GT(four.cycles, one.cycles);
    EXPECT_NEAR(four.cyclesPerInvocation, one.cyclesPerInvocation,
                one.cyclesPerInvocation * 0.5 + 2);
}

} // namespace
} // namespace nachos
