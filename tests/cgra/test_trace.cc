#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "cgra/trace.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"

namespace nachos {
namespace {

TEST(TraceCollector, DisabledDropsEvents)
{
    TraceCollector t(false);
    t.record({"x", "compute", 0, 1, 0});
    EXPECT_EQ(t.size(), 0u);
}

TEST(TraceCollector, JsonShapeValid)
{
    TraceCollector t(true);
    t.record({"load#3", "memory", 10, 5, 2});
    t.record({"iadd#4", "compute", 12, 0, 1});
    std::string json = t.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("load#3"), std::string::npos);
    // Zero durations are clamped to 1 for visibility.
    EXPECT_NE(json.find("\"dur\":1"), std::string::npos);
}

TEST(TraceIntegration, SimulatorWritesTraceFile)
{
    RegionBuilder b("traced");
    ObjectId a = b.object("A", 4096);
    OpId v = b.liveIn();
    b.store(b.at(a, 0), v);
    OpId ld = b.load(b.at(a, 0));
    b.liveOut(ld);
    Region r = b.build();

    AliasAnalysisResult analysis = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, analysis.matrix);
    SimConfig cfg;
    cfg.invocations = 2;
    cfg.traceFile = "test_trace_out.json";
    simulate(r, mdes, BackendKind::Nachos, cfg);

    std::ifstream in(cfg.traceFile);
    ASSERT_TRUE(in.good());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("traceEvents"), std::string::npos);
    EXPECT_NE(content.find("store"), std::string::npos);
    EXPECT_NE(content.find("forward"), std::string::npos);
    std::remove(cfg.traceFile.c_str());
}

} // namespace
} // namespace nachos
