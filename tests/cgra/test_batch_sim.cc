/**
 * @file
 * Batched-engine identity tests: every lane of a BatchSimEngine run
 * must be byte-identical to a sequential simulate() with the same
 * configuration — same cycles, stats dump, energy, load digest,
 * memory image, and commit trace. Swept over backend kind, LSQ bank
 * count, and lane count (including non-power-of-two widths and lanes
 * with differing invocation counts, which exercise the wave rewind).
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/batch_sim.hh"
#include "cgra/lsq_backend.hh"
#include "mde/inserter.hh"
#include "testing/region_gen.hh"

namespace nachos {
namespace {

MdeSet
mdesFor(const Region &r)
{
    AliasAnalysisResult analysis = runAliasPipeline(r, PipelineConfig{});
    return insertMdes(r, analysis.matrix);
}

void
expectSameResult(const SimResult &batched, const SimResult &seq,
                 const std::string &what)
{
    EXPECT_EQ(batched.cycles, seq.cycles) << what;
    EXPECT_EQ(batched.cyclesPerInvocation, seq.cyclesPerInvocation)
        << what;
    EXPECT_EQ(batched.maxMlp, seq.maxMlp) << what;
    EXPECT_EQ(batched.avgMlp, seq.avgMlp) << what;
    EXPECT_EQ(batched.stats.dump(), seq.stats.dump()) << what;
    EXPECT_EQ(batched.energy.compute, seq.energy.compute) << what;
    EXPECT_EQ(batched.energy.mde, seq.energy.mde) << what;
    EXPECT_EQ(batched.energy.lsqBloom, seq.energy.lsqBloom) << what;
    EXPECT_EQ(batched.energy.lsqCam, seq.energy.lsqCam) << what;
    EXPECT_EQ(batched.energy.l1, seq.energy.l1) << what;
    EXPECT_EQ(batched.loadValueDigest, seq.loadValueDigest) << what;
    EXPECT_EQ(batched.criticalOp, seq.criticalOp) << what;
    EXPECT_EQ(batched.memImage, seq.memImage) << what;
    ASSERT_EQ(batched.memCommits.size(), seq.memCommits.size()) << what;
    for (size_t i = 0; i < seq.memCommits.size(); ++i) {
        EXPECT_EQ(batched.memCommits[i].op, seq.memCommits[i].op)
            << what << " commit " << i;
        EXPECT_EQ(batched.memCommits[i].invocation,
                  seq.memCommits[i].invocation)
            << what << " commit " << i;
        EXPECT_EQ(batched.memCommits[i].cycle, seq.memCommits[i].cycle)
            << what << " commit " << i;
        EXPECT_EQ(batched.memCommits[i].addr, seq.memCommits[i].addr)
            << what << " commit " << i;
        EXPECT_EQ(batched.memCommits[i].forwarded,
                  seq.memCommits[i].forwarded)
            << what << " commit " << i;
    }
}

void
expectBatchMatchesSequential(const Region &r, const MdeSet &mdes,
                             const std::vector<BatchLane> &lanes,
                             const std::string &what)
{
    BatchSimEngine engine;
    const std::vector<SimResult> batched = engine.run(r, mdes, lanes);
    ASSERT_EQ(batched.size(), lanes.size());
    for (size_t i = 0; i < lanes.size(); ++i) {
        const SimResult seq =
            simulate(r, mdes, lanes[i].kind, lanes[i].cfg);
        expectSameResult(batched[i], seq,
                         what + " lane " + std::to_string(i));
    }
}

class BatchLaneSweep : public ::testing::TestWithParam<uint32_t>
{};

/** N identical lanes of each backend kind match N sequential runs. */
TEST_P(BatchLaneSweep, HomogeneousLanesMatchSequential)
{
    const uint32_t numLanes = GetParam();
    const Region r = testing::randomRegion(2024);
    const MdeSet mdes = mdesFor(r);
    for (BackendKind kind : {BackendKind::OptLsq, BackendKind::NachosSw,
                             BackendKind::Nachos}) {
        SimConfig cfg;
        cfg.invocations = 5;
        cfg.recordMemTrace = true;
        std::vector<BatchLane> lanes(numLanes, BatchLane{kind, cfg});
        expectBatchMatchesSequential(
            r, mdes, lanes,
            "kind=" + std::to_string(static_cast<int>(kind)) +
                " lanes=" + std::to_string(numLanes));
    }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, BatchLaneSweep,
                         ::testing::Values(1u, 2u, 7u, 8u));

/** The fuzzer's lane shape: OPT-LSQ x {1,2,4,8} banks + SW + NACHOS. */
TEST(BatchSim, FuzzerShapedMixedLanes)
{
    for (uint64_t seed : {7u, 99u, 4242u}) {
        const Region r = testing::randomRegion(seed);
        const MdeSet mdes = mdesFor(r);
        std::vector<BatchLane> lanes;
        for (uint32_t banks : {1u, 2u, 4u, 8u}) {
            BatchLane lane;
            lane.kind = BackendKind::OptLsq;
            lane.cfg.invocations = 4;
            lane.cfg.lsq.banks = banks;
            lanes.push_back(lane);
        }
        BatchLane sw;
        sw.kind = BackendKind::NachosSw;
        sw.cfg.invocations = 4;
        lanes.push_back(sw);
        BatchLane hw;
        hw.kind = BackendKind::Nachos;
        hw.cfg.invocations = 4;
        lanes.push_back(hw);
        expectBatchMatchesSequential(r, mdes, lanes,
                                     "seed " + std::to_string(seed));
    }
}

/** Lanes with different invocation counts: fast lanes drop out of
 *  later waves and the queue clock rewinds between waves. */
TEST(BatchSim, UnevenInvocationCounts)
{
    const Region r = testing::randomRegion(31337);
    const MdeSet mdes = mdesFor(r);
    std::vector<BatchLane> lanes;
    const uint64_t invocations[] = {1, 6, 3, 0, 8};
    for (uint64_t n : invocations) {
        BatchLane lane;
        lane.kind = BackendKind::Nachos;
        lane.cfg.invocations = n;
        lanes.push_back(lane);
    }
    expectBatchMatchesSequential(r, mdes, lanes, "uneven invocations");
}

/** One engine reused across different regions repools hierarchies. */
TEST(BatchSim, EngineReuseAcrossRegions)
{
    BatchSimEngine engine;
    for (uint64_t seed : {11u, 12u, 13u}) {
        const Region r = testing::randomRegion(seed);
        const MdeSet mdes = mdesFor(r);
        SimConfig cfg;
        cfg.invocations = 3;
        std::vector<BatchLane> lanes(
            3, BatchLane{BackendKind::NachosSw, cfg});
        const std::vector<SimResult> batched =
            engine.run(r, mdes, lanes);
        ASSERT_EQ(batched.size(), lanes.size());
        for (size_t i = 0; i < lanes.size(); ++i) {
            const SimResult seq =
                simulate(r, mdes, lanes[i].kind, lanes[i].cfg);
            expectSameResult(batched[i], seq,
                             "reuse seed " + std::to_string(seed) +
                                 " lane " + std::to_string(i));
        }
    }
}

using BatchSimDeathTest = ::testing::Test;

/** All lanes of one batch must simulate the same region. */
TEST(BatchSimDeathTest, MixingRegionsIsFatal)
{
    const Region a = testing::randomRegion(1);
    const Region b = testing::randomRegion(2);
    const MdeSet mdesA = mdesFor(a);
    const MdeSet mdesB = mdesFor(b);
    SimConfig cfg;
    cfg.invocations = 2;
    LsqBackend laneA(a, cfg.lsq);
    LsqBackend laneB(b, cfg.lsq);
    std::vector<SimConfig> cfgs{cfg, cfg};
    std::vector<OrderingBackend *> backends{&laneA, &laneB};
    BatchSimEngine engine;
    EXPECT_DEATH(engine.run(a, mdesA, cfgs, backends),
                 "mixes regions");
}

/** Lane masks are one 64-bit word: more than 64 lanes is fatal. */
TEST(BatchSimDeathTest, TooManyLanesIsFatal)
{
    const Region r = testing::randomRegion(3);
    const MdeSet mdes = mdesFor(r);
    SimConfig cfg;
    cfg.invocations = 1;
    std::vector<BatchLane> lanes(
        BatchSimEngine::kMaxLanes + 1,
        BatchLane{BackendKind::NachosSw, cfg});
    EXPECT_DEATH(simulateBatch(r, mdes, lanes), "lane");
}

} // namespace
} // namespace nachos
