/**
 * Cross-backend equivalence property tests: the three ordering schemes
 * must produce bit-identical load values and final memory images on
 * the same region — any divergence is a memory-ordering violation in
 * one of the backends (or an unsound compiler label).
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "mde/inserter.hh"
#include "testing/region_gen.hh"

namespace nachos {
namespace {

struct EquivCase
{
    uint64_t seed;
    bool baselineCompiler; ///< run with stages 1+3 only
};

class BackendEquivalence
    : public ::testing::TestWithParam<uint64_t>
{};

void
expectEquivalent(const Region &r, const PipelineConfig &cfg,
                 uint64_t invocations)
{
    AliasAnalysisResult analysis = runAliasPipeline(r, cfg);
    ASSERT_EQ(countSoundnessViolations(r, analysis.matrix, invocations),
              0u)
        << r.name();
    MdeSet mdes = insertMdes(r, analysis.matrix);

    SimConfig sim_cfg;
    sim_cfg.invocations = invocations;
    SimResult lsq = simulate(r, mdes, BackendKind::OptLsq, sim_cfg);
    SimResult sw = simulate(r, mdes, BackendKind::NachosSw, sim_cfg);
    SimResult hw = simulate(r, mdes, BackendKind::Nachos, sim_cfg);

    EXPECT_EQ(lsq.loadValueDigest, sw.loadValueDigest)
        << r.name() << ": LSQ vs SW load values diverged";
    EXPECT_EQ(sw.loadValueDigest, hw.loadValueDigest)
        << r.name() << ": SW vs NACHOS load values diverged";
    EXPECT_EQ(lsq.memImage, sw.memImage)
        << r.name() << ": LSQ vs SW memory image diverged";
    EXPECT_EQ(sw.memImage, hw.memImage)
        << r.name() << ": SW vs NACHOS memory image diverged";
}

TEST_P(BackendEquivalence, FullPipeline)
{
    Region r = testing::randomRegion(GetParam());
    expectEquivalent(r, PipelineConfig{}, 6);
}

TEST_P(BackendEquivalence, BaselineCompilerPipeline)
{
    Region r = testing::randomRegion(GetParam());
    expectEquivalent(r, PipelineConfig::baselineCompiler(), 6);
}

TEST_P(BackendEquivalence, StoreHeavyRegions)
{
    testing::RandomRegionOptions opts;
    opts.storeFraction = 0.75;
    opts.minMemOps = 6;
    opts.maxMemOps = 20;
    Region r = testing::randomRegion(GetParam() + 1000, opts);
    expectEquivalent(r, PipelineConfig{}, 5);
}

INSTANTIATE_TEST_SUITE_P(RandomRegions, BackendEquivalence,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

} // namespace
} // namespace nachos
