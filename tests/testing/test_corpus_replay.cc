/**
 * Regression corpus replay: every checked-in reproducer region must
 * (a) parse and re-serialize byte-identically, and (b) pass the full
 * differential check battery. The corpus holds the regions that
 * exposed real bugs (forwarding truncation, cross-bank store ordering,
 * the stage-3 forwarding-transitivity unsoundness) — once fixed,
 * forever green.
 *
 * NACHOS_CORPUS_DIR is injected by the build (tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/serialize.hh"
#include "testing/diff_fuzzer.hh"

namespace nachos {
namespace testing {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path>
corpusFiles()
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(NACHOS_CORPUS_DIR)) {
        if (entry.path().extension() == ".region")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(CorpusReplay, CorpusIsNotEmpty)
{
    EXPECT_GE(corpusFiles().size(), 4u)
        << "regression corpus missing from " << NACHOS_CORPUS_DIR;
}

TEST(CorpusReplay, EveryReproducerRoundTripsByteIdentically)
{
    for (const fs::path &path : corpusFiles()) {
        const std::string text = slurp(path);
        const Region region = regionFromString(text);
        EXPECT_EQ(regionToString(region), text)
            << path.filename() << " is not in canonical form";
    }
}

TEST(CorpusReplay, EveryReproducerPassesTheFullCheckBattery)
{
    FuzzOptions opts;
    for (const fs::path &path : corpusFiles()) {
        const Region region = regionFromString(slurp(path));
        const std::vector<FuzzMismatch> mismatches =
            checkRegion(region, opts);
        for (const FuzzMismatch &m : mismatches) {
            ADD_FAILURE() << path.filename() << " [" << m.backend
                          << "] " << m.check << ": " << m.detail;
        }
    }
}

} // namespace
} // namespace testing
} // namespace nachos
