/**
 * The differential fuzzer itself: clean seeds pass on every profile, a
 * hand-built trivially-correct region yields no mismatches, and —
 * mutation self-test — a checker that cannot fail verifies nothing, so
 * each fault-injection mode must be caught within a small seed budget,
 * with a shrunk reproducer that round-trips byte-identically.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/serialize.hh"
#include "testing/diff_fuzzer.hh"

namespace nachos {
namespace testing {
namespace {

TEST(DiffFuzzer, CleanSeedsProduceNoMismatches)
{
    FuzzOptions opts;
    const FuzzSummary summary = runFuzz(0, 40, opts, /*threads=*/4);
    EXPECT_EQ(summary.cases, 40u);
    EXPECT_EQ(summary.failures, 0u);
    for (const FuzzCaseOutcome &o : summary.failed) {
        for (const FuzzMismatch &m : o.mismatches) {
            ADD_FAILURE() << "seed " << o.seed << " [" << m.backend
                          << "] " << m.check << ": " << m.detail;
        }
    }
}

TEST(DiffFuzzer, EveryProfilePassesASmokeSweep)
{
    for (const char *profile :
         {"store-heavy", "zero-store", "single-op", "negative-stride",
          "oob-2d", "opaque-only"}) {
        FuzzOptions opts;
        opts.gen = profileByName(profile);
        const FuzzSummary summary = runFuzz(0, 10, opts, /*threads=*/4);
        EXPECT_EQ(summary.failures, 0u) << "profile " << profile;
    }
}

TEST(DiffFuzzer, TriviallyCorrectRegionChecksClean)
{
    RegionBuilder b("trivial");
    ObjectId a = b.object("A", 256);
    OpId c = b.constant(42);
    b.store(b.at(a, 0), c);
    OpId ld = b.load(b.at(a, 0));
    b.liveOut(ld);
    const Region r = b.build();

    FuzzOptions opts;
    EXPECT_TRUE(checkRegion(r, opts).empty());
}

TEST(DiffFuzzer, FaultNamesRoundTrip)
{
    for (FaultInjection f :
         {FaultInjection::None, FaultInjection::DropOrderEdge,
          FaultInjection::DropMayEdge, FaultInjection::DropForwardEdge}) {
        EXPECT_EQ(faultByName(faultName(f)), f);
    }
    EXPECT_DEATH(faultByName("bogus"), "fault");
}

/**
 * The ISSUE's mutation-self-test bar: an injected fault must be
 * detected within 200 seeds. Runs with shrinking enabled so the
 * reproducer contract is exercised on a real failure.
 */
void
expectFaultCaught(FaultInjection fault)
{
    FuzzOptions opts;
    opts.fault = fault;
    const FuzzSummary summary =
        runFuzz(0, 200, opts, /*threads=*/4, /*max_failures=*/1);
    ASSERT_GE(summary.failures, 1u)
        << faultName(fault) << " was never detected in "
        << summary.cases << " seeds";

    const FuzzCaseOutcome &o = summary.failed.front();
    EXPECT_FALSE(o.mismatches.empty());
    EXPECT_LE(o.opsAfterShrink, o.opsBeforeShrink);

    // The shrunk reproducer must round-trip byte-identically so the
    // corpus stays stable under re-serialization.
    ASSERT_FALSE(o.reproducer.empty());
    const Region back = regionFromString(o.reproducer);
    EXPECT_EQ(regionToString(back), o.reproducer);

    // And replaying it with the same fault must still fail.
    FuzzOptions replay = opts;
    EXPECT_FALSE(checkRegion(back, replay).empty())
        << faultName(fault) << " reproducer does not reproduce";
}

/**
 * The batched engine must be verdict-transparent: the same seeds run
 * with batched and sequential simulation produce identical mismatch
 * lists — including under fault injection, where the checker is
 * supposed to fire.
 */
TEST(DiffFuzzer, BatchedAndSequentialSimAgree)
{
    for (FaultInjection fault :
         {FaultInjection::None, FaultInjection::DropOrderEdge}) {
        FuzzOptions batched;
        batched.fault = fault;
        batched.shrinkFailures = false;
        FuzzOptions sequential = batched;
        sequential.batchedSim = false;

        for (uint64_t seed = 0; seed < 25; ++seed) {
            const Region r = generateRegion(seed, batched.gen);
            const std::vector<FuzzMismatch> a = checkRegion(r, batched);
            const std::vector<FuzzMismatch> b =
                checkRegion(r, sequential);
            ASSERT_EQ(a.size(), b.size())
                << faultName(fault) << " seed " << seed;
            for (size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].check, b[i].check) << "seed " << seed;
                EXPECT_EQ(a[i].backend, b[i].backend)
                    << "seed " << seed;
                EXPECT_EQ(a[i].detail, b[i].detail) << "seed " << seed;
            }
        }
    }
}

TEST(DiffFuzzerSelfTest, DroppedOrderEdgeIsCaught)
{
    expectFaultCaught(FaultInjection::DropOrderEdge);
}

TEST(DiffFuzzerSelfTest, DroppedMayEdgeIsCaught)
{
    expectFaultCaught(FaultInjection::DropMayEdge);
}

TEST(DiffFuzzerSelfTest, DroppedForwardEdgeIsCaught)
{
    expectFaultCaught(FaultInjection::DropForwardEdge);
}

} // namespace
} // namespace testing
} // namespace nachos
