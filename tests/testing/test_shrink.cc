/**
 * Failure minimization: the greedy reducer must preserve the failure
 * predicate, produce structurally valid (serializable, executable)
 * regions, shrink decisively when most of the region is irrelevant,
 * and stay deterministic.
 */

#include <gtest/gtest.h>

#include "ir/serialize.hh"
#include "testing/reference.hh"
#include "testing/region_gen.hh"
#include "testing/shrink.hh"

namespace nachos {
namespace testing {
namespace {

/** First seed whose generated region satisfies `pred`. */
uint64_t
seedWhere(const FailurePredicate &pred, const RegionGenOptions &opts = {})
{
    for (uint64_t seed = 0; seed < 64; ++seed) {
        if (pred(generateRegion(seed, opts)))
            return seed;
    }
    ADD_FAILURE() << "no seed in [0,64) satisfies the predicate";
    return 0;
}

bool
hasStore(const Region &r)
{
    for (OpId id : r.memOps()) {
        if (r.op(id).isStore())
            return true;
    }
    return false;
}

TEST(Shrink, PreservesThePredicate)
{
    const uint64_t seed = seedWhere(hasStore);
    const Region region = generateRegion(seed);
    ShrinkStats stats;
    const Region shrunk = shrinkRegion(region, hasStore, &stats);

    EXPECT_TRUE(hasStore(shrunk));
    EXPECT_LE(shrunk.numOps(), region.numOps());
    EXPECT_EQ(stats.opsBefore, region.numOps());
    EXPECT_EQ(stats.opsAfter, shrunk.numOps());
    EXPECT_GT(stats.probes, 0u);
}

TEST(Shrink, RemovesEverythingIrrelevant)
{
    // "Has at least one memory op" is satisfiable by a one-op region,
    // so a competent reducer must get close to that regardless of how
    // big the input was.
    const FailurePredicate pred = [](const Region &r) {
        return !r.memOps().empty();
    };
    RegionGenOptions opts;
    opts.minMemOps = 10;
    opts.maxMemOps = 14;
    const Region region = generateRegion(3, opts);
    const Region shrunk = shrinkRegion(region, pred);
    EXPECT_LE(shrunk.memOps().size(), 2u)
        << "reducer left " << shrunk.memOps().size()
        << " mem ops where 1 suffices";
}

TEST(Shrink, OutputIsSerializableAndExecutable)
{
    const uint64_t seed = seedWhere(hasStore);
    const Region shrunk = shrinkRegion(generateRegion(seed), hasStore);

    // Round-trips byte-identically (corpus contract)...
    const std::string text = regionToString(shrunk);
    const Region back = regionFromString(text);
    EXPECT_TRUE(regionsEquivalent(shrunk, back));
    EXPECT_EQ(regionToString(back), text);

    // ...and still executes under the oracle.
    const ReferenceResult ref = referenceExecute(shrunk, 2);
    EXPECT_EQ(ref.committedMemOps, shrunk.memOps().size() * 2);
}

TEST(Shrink, Deterministic)
{
    const uint64_t seed = seedWhere(hasStore);
    const Region a = shrinkRegion(generateRegion(seed), hasStore);
    const Region b = shrinkRegion(generateRegion(seed), hasStore);
    EXPECT_EQ(regionToString(a), regionToString(b));
}

TEST(Shrink, StatsAccountForTheReduction)
{
    const FailurePredicate pred = [](const Region &r) {
        return !r.memOps().empty();
    };
    RegionGenOptions opts;
    opts.minMemOps = 10;
    opts.maxMemOps = 14;
    ShrinkStats stats;
    shrinkRegion(generateRegion(3, opts), pred, &stats);
    EXPECT_GT(stats.opsRemoved, 0u);
    EXPECT_GE(stats.rounds, 1u);
    EXPECT_LT(stats.opsAfter, stats.opsBefore);
}

} // namespace
} // namespace testing
} // namespace nachos
