/**
 * Generator edge cases: determinism, serialization round-trips, the
 * canned profiles (zero-store, single-op, negative strides, out-of-range
 * 2-D through stage4, opaque-only through the MAY station), and the
 * address-safety contract that underpins the whole differential fuzzer:
 * every generated region is dynamically sound for the full invocation
 * horizon.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "ir/serialize.hh"
#include "mde/inserter.hh"
#include "testing/reference.hh"
#include "testing/region_gen.hh"

namespace nachos {
namespace testing {
namespace {

TEST(RegionGen, DeterministicPerSeed)
{
    const RegionGenOptions opts;
    for (uint64_t seed : {0u, 1u, 7u, 42u, 1337u}) {
        const Region a = generateRegion(seed, opts);
        const Region b = generateRegion(seed, opts);
        EXPECT_TRUE(regionsEquivalent(a, b)) << "seed " << seed;
        EXPECT_EQ(regionToString(a), regionToString(b));
    }
}

TEST(RegionGen, SeedsActuallyVaryTheShape)
{
    const RegionGenOptions opts;
    const std::string first = regionToString(generateRegion(0, opts));
    int different = 0;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        if (regionToString(generateRegion(seed, opts)) != first)
            ++different;
    }
    EXPECT_GE(different, 6);
}

TEST(RegionGen, SerializationRoundTripsByteIdentically)
{
    for (uint64_t seed = 0; seed < 24; ++seed) {
        const Region r = generateRegion(seed);
        const std::string text = regionToString(r);
        const Region back = regionFromString(text);
        EXPECT_TRUE(regionsEquivalent(r, back)) << "seed " << seed;
        EXPECT_EQ(regionToString(back), text) << "seed " << seed;
    }
}

TEST(RegionGen, BackCompatShimMatchesGenerateRegion)
{
    RandomRegionOptions opts;
    opts.minMemOps = 5;
    opts.maxMemOps = 9;
    opts.storeFraction = 0.7;
    const Region a = randomRegion(11, opts);
    const Region b = generateRegion(11, opts);
    EXPECT_TRUE(regionsEquivalent(a, b));
}

TEST(RegionGen, GeneratedRegionsAreSoundForTheFullHorizon)
{
    const RegionGenOptions opts;
    for (uint64_t seed = 0; seed < 32; ++seed) {
        const Region r = generateRegion(seed, opts);
        const AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_EQ(countSoundnessViolations(r, res.matrix,
                                           opts.maxInvocations),
                  0u)
            << "seed " << seed;
    }
}

TEST(RegionGenProfiles, ZeroStoreRegionsHaveNoStores)
{
    const RegionGenOptions opts = zeroStoreProfile();
    for (uint64_t seed = 0; seed < 16; ++seed) {
        const Region r = generateRegion(seed, opts);
        ASSERT_FALSE(r.memOps().empty()) << "seed " << seed;
        for (OpId id : r.memOps())
            EXPECT_TRUE(r.op(id).isLoad()) << "seed " << seed;
        // No stores means the reference image is untouched background
        // memory and every backend trivially agrees — but the region
        // must still execute.
        const ReferenceResult ref = referenceExecute(r, 2);
        EXPECT_EQ(ref.committedMemOps, r.memOps().size() * 2);
    }
}

TEST(RegionGenProfiles, SingleOpRegionsHaveExactlyOneMemOp)
{
    const RegionGenOptions opts = singleOpProfile();
    for (uint64_t seed = 0; seed < 16; ++seed) {
        const Region r = generateRegion(seed, opts);
        EXPECT_EQ(r.memOps().size(), 1u) << "seed " << seed;
    }
}

TEST(RegionGenProfiles, NegativeStridesAppearAndStayInBounds)
{
    const RegionGenOptions opts = negativeStrideProfile();
    bool saw_negative = false;
    for (uint64_t seed = 0; seed < 24; ++seed) {
        const Region r = generateRegion(seed, opts);
        for (OpId id : r.memOps()) {
            for (const AffineTerm &t : r.op(id).mem->addr.terms) {
                if (r.symbol(t.sym).kind == SymKind::Invocation &&
                    t.coeff < 0)
                    saw_negative = true;
            }
        }
        const AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_EQ(countSoundnessViolations(r, res.matrix,
                                           opts.maxInvocations),
                  0u)
            << "seed " << seed;
    }
    EXPECT_TRUE(saw_negative)
        << "profile never produced a negative invocation stride";
}

TEST(RegionGenProfiles, OutOfRange2dSurvivesStage4Soundly)
{
    const RegionGenOptions opts = outOfRange2dProfile();
    bool saw_2d = false;
    for (uint64_t seed = 0; seed < 24; ++seed) {
        const Region r = generateRegion(seed, opts);
        for (OpId id : r.memOps()) {
            for (const AffineTerm &t : r.op(id).mem->addr.terms) {
                if (r.symbol(t.sym).kind == SymKind::DimStride)
                    saw_2d = true;
            }
        }
        // The point of the profile: out-of-shape column indices are a
        // known blind spot of naive polyhedral disambiguation. Stage 4
        // must not emit a NO label any dynamic execution contradicts.
        const AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_EQ(countSoundnessViolations(r, res.matrix,
                                           opts.maxInvocations),
                  0u)
            << "seed " << seed;
    }
    EXPECT_TRUE(saw_2d) << "profile never produced a 2-D access";
}

TEST(RegionGenProfiles, OpaqueOnlyRegionsExerciseTheMayStation)
{
    const RegionGenOptions opts = opaqueOnlyProfile();
    uint64_t may_checks = 0;
    for (uint64_t seed = 0; seed < 12; ++seed) {
        const Region r = generateRegion(seed, opts);
        // The profile is a MAY stress: besides the opaque-producer
        // index load (and conflict-reuses of its address), accesses
        // involve an opaque base or an opaque affine term.
        bool any_opaque = false;
        for (OpId id : r.memOps()) {
            const MemAccess &mem = *r.op(id).mem;
            any_opaque |= mem.addr.base.kind == BaseKind::Opaque;
            for (const AffineTerm &t : mem.addr.terms)
                any_opaque |= r.symbol(t.sym).kind == SymKind::Opaque;
        }
        EXPECT_TRUE(any_opaque) << "seed " << seed;

        const AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_EQ(countSoundnessViolations(r, res.matrix,
                                           opts.maxInvocations),
                  0u)
            << "seed " << seed;

        const MdeSet mdes = insertMdes(r, res.matrix);
        SimConfig cfg;
        cfg.invocations = 4;
        const SimResult hw = simulate(r, mdes, BackendKind::Nachos, cfg);
        may_checks += hw.stats.get("nachos.checksClear") +
                      hw.stats.get("nachos.checksConflict") +
                      hw.stats.get("nachos.runtimeForwards");

        const ReferenceResult ref = referenceExecute(r, 4);
        EXPECT_EQ(hw.loadValueDigest, ref.loadValueDigest)
            << "seed " << seed;
        EXPECT_EQ(hw.memImage, ref.memImage) << "seed " << seed;
    }
    EXPECT_GT(may_checks, 0u)
        << "opaque-only sweep never reached a comparator station";
}

TEST(RegionGenProfiles, ProfileByNameCoversEveryProfile)
{
    EXPECT_EQ(profileByName("zero-store").storeFraction, 0.0);
    EXPECT_EQ(profileByName("single-op").maxMemOps, 1);
    EXPECT_TRUE(profileByName("negative-stride").allowNegativeStride);
    EXPECT_TRUE(profileByName("oob-2d").allowOutOfRange2d);
    EXPECT_GT(profileByName("opaque-only").weightOpaque, 0.0);
    EXPECT_GT(profileByName("store-heavy").storeFraction,
              profileByName("default").storeFraction);
    EXPECT_DEATH(profileByName("no-such-profile"), "profile");
}

} // namespace
} // namespace testing
} // namespace nachos
