/**
 * @file
 * Shared test helper: deterministic random offload regions covering
 * every address-pattern class (constant, strided, param, 2-D symbolic,
 * opaque gather) with real dynamic conflicts. Used by the analysis
 * property tests and the cross-backend equivalence tests.
 */

#ifndef NACHOS_TESTS_TESTING_RANDOM_REGION_HH
#define NACHOS_TESTS_TESTING_RANDOM_REGION_HH

#include <string>
#include <vector>

#include "ir/builder.hh"
#include "support/random.hh"

namespace nachos {
namespace testing {

/** Tuning knobs for random region generation. */
struct RandomRegionOptions
{
    int minMemOps = 4;
    int maxMemOps = 14;
    /** Probability a memory op is a store. */
    double storeFraction = 0.5;
    /** Add a compute cloud chained off loads. */
    bool withCompute = true;
};

/** Build a random-but-deterministic region from a seed. */
inline Region
randomRegion(uint64_t seed, const RandomRegionOptions &opts = {})
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    RegionBuilder b("rand" + std::to_string(seed));

    const int n_objects = static_cast<int>(rng.range(1, 4));
    std::vector<ObjectId> objs;
    objs.reserve(n_objects);
    for (int i = 0; i < n_objects; ++i)
        objs.push_back(b.object("o" + std::to_string(i), 1 << 14));
    ObjectId m2 = b.object2d("m2", 32, 16, DataType::F64);

    std::vector<ParamId> params;
    for (int i = 0; i < 2; ++i) {
        ObjectId target = objs[rng.below(objs.size())];
        int64_t off = rng.range(0, 16) * 8;
        ParamId p =
            b.pointerParam("p" + std::to_string(i), target, off);
        if (rng.chance(0.5))
            b.paramProvenance(p, target, off);
        params.push_back(p);
    }

    OpId seed_val = b.liveIn();
    OpId idx_load = b.load(b.at(objs[0], 0));
    SymbolId osym = b.opaqueSym("gidx", idx_load, 64, 8, 0, seed + 7);

    std::vector<OpId> values = {seed_val, idx_load};
    const int n_mem =
        static_cast<int>(rng.range(opts.minMemOps, opts.maxMemOps));
    for (int i = 0; i < n_mem; ++i) {
        AddrExpr e;
        switch (rng.below(5)) {
          case 0:
            e = b.at(objs[rng.below(objs.size())],
                     rng.range(0, 32) * 8);
            break;
          case 1:
            e = b.stream(objs[rng.below(objs.size())],
                         rng.range(0, 4) * 8, rng.range(0, 16) * 8);
            break;
          case 2:
            e = b.atParam(params[rng.below(params.size())],
                          rng.range(0, 32) * 8);
            break;
          case 3:
            e = b.at2d(m2, rng.range(0, 8), rng.range(0, 15));
            break;
          default:
            e = b.at(objs[rng.below(objs.size())], 0);
            e.terms.push_back({osym, 1});
            e.canonicalize();
            break;
        }
        if (rng.chance(opts.storeFraction)) {
            OpId data = values[rng.below(values.size())];
            b.store(e, data, 8);
        } else {
            OpId v = b.load(e, 8);
            values.push_back(v);
            if (opts.withCompute && rng.chance(0.6)) {
                OpId a = values[rng.below(values.size())];
                values.push_back(b.iadd(v, a));
            }
        }
    }
    if (!values.empty())
        b.liveOut(values.back());
    return b.build();
}

} // namespace testing
} // namespace nachos

#endif // NACHOS_TESTS_TESTING_RANDOM_REGION_HH
