/**
 * The reference oracle on hand-built regions with pen-and-paper
 * semantics: store-to-load visibility in program order, narrow-access
 * zero-extension, background-memory determinism, commit accounting,
 * and the LiveOut plumbing.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "testing/reference.hh"

namespace nachos {
namespace testing {
namespace {

TEST(Reference, StoreThenLoadSeesTheStoredValue)
{
    RegionBuilder b("st-ld");
    ObjectId a = b.object("A", 256);
    OpId c = b.constant(0x1122334455667788);
    b.store(b.at(a, 16), c);
    OpId ld = b.load(b.at(a, 16));
    b.liveOut(ld);
    const Region r = b.build();

    const ReferenceResult ref = referenceExecute(r, 3);
    ASSERT_EQ(ref.loads.size(), 3u);
    for (uint64_t inv = 0; inv < 3; ++inv) {
        EXPECT_EQ(ref.loads[inv].op, ld);
        EXPECT_EQ(ref.loads[inv].invocation, inv);
        EXPECT_EQ(ref.loads[inv].value, 0x1122334455667788);
    }
    EXPECT_EQ(ref.finalLiveOut, 0x1122334455667788);
    EXPECT_EQ(ref.committedMemOps, r.memOps().size() * 3);
}

TEST(Reference, NarrowAccessesZeroExtendLikeMemory)
{
    // A 4-byte store writes the low word; a 4-byte load reads it back
    // zero-extended. This is the exact semantics the simulator's
    // forwarding path must reproduce (a fuzzer-found bug: forwarded
    // values used to skip the truncation).
    RegionBuilder b("narrow");
    ObjectId a = b.object("A", 256);
    OpId c = b.constant(0x11223344AABBCCDD);
    b.store(b.at(a, 0), c, 4);
    OpId ld = b.load(b.at(a, 0), 4);
    b.liveOut(ld);
    const Region r = b.build();

    const ReferenceResult ref = referenceExecute(r, 1);
    ASSERT_EQ(ref.loads.size(), 1u);
    EXPECT_EQ(static_cast<uint64_t>(ref.loads[0].value),
              uint64_t{0xAABBCCDD});
}

TEST(Reference, YoungerStoreWinsWithinAnInvocation)
{
    RegionBuilder b("waw");
    ObjectId a = b.object("A", 256);
    OpId c1 = b.constant(111);
    OpId c2 = b.constant(222);
    b.store(b.at(a, 8), c1);
    b.store(b.at(a, 8), c2);
    OpId ld = b.load(b.at(a, 8));
    b.liveOut(ld);
    const Region r = b.build();

    const ReferenceResult ref = referenceExecute(r, 2);
    for (const RefLoad &l : ref.loads)
        EXPECT_EQ(l.value, 222);
}

TEST(Reference, BackgroundMemoryIsDeterministicAndNonZero)
{
    RegionBuilder b("bg");
    ObjectId a = b.object("A", 4096);
    OpId ld = b.load(b.at(a, 128));
    b.liveOut(ld);
    const Region r = b.build();

    const ReferenceResult ref1 = referenceExecute(r, 1);
    const ReferenceResult ref2 = referenceExecute(r, 1);
    ASSERT_EQ(ref1.loads.size(), 1u);
    // Background bytes are pseudo-random, not zero — an all-zero
    // background would mask missing-write bugs in image comparison.
    EXPECT_NE(ref1.loads[0].value, 0);
    EXPECT_EQ(ref1.loads[0].value, ref2.loads[0].value);
    EXPECT_EQ(ref1.loadValueDigest, ref2.loadValueDigest);
    EXPECT_EQ(ref1.memImage, ref2.memImage);
}

TEST(Reference, StridedStoresLandAtDistinctAddresses)
{
    RegionBuilder b("stream");
    ObjectId a = b.object("A", 4096);
    OpId c = b.constant(7);
    b.store(b.stream(a, 8), c);
    const Region r = b.build();

    const ReferenceResult ref = referenceExecute(r, 4);
    EXPECT_EQ(ref.committedMemOps, 4u);
    // Each invocation wrote a different 8-byte slot: the image must
    // contain at least 4 * 8 touched bytes.
    EXPECT_GE(ref.memImage.size(), 32u);
}

TEST(Reference, LoadsComeBackInProgramOrder)
{
    RegionBuilder b("order");
    ObjectId a = b.object("A", 256);
    OpId ld1 = b.load(b.at(a, 0));
    OpId ld2 = b.load(b.at(a, 64));
    OpId sum = b.iadd(ld1, ld2);
    b.liveOut(sum);
    const Region r = b.build();

    const ReferenceResult ref = referenceExecute(r, 2);
    ASSERT_EQ(ref.loads.size(), 4u);
    EXPECT_EQ(ref.loads[0].op, ld1);
    EXPECT_EQ(ref.loads[1].op, ld2);
    EXPECT_EQ(ref.loads[0].invocation, 0u);
    EXPECT_EQ(ref.loads[2].invocation, 1u);
    EXPECT_EQ(ref.loads[1].addr, ref.loads[0].addr + 64);
}

} // namespace
} // namespace testing
} // namespace nachos
