#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/dfg.hh"
#include "ir/dot.hh"

namespace nachos {
namespace {

TEST(Region, AddObjectAssignsIds)
{
    Region r;
    MemObject a;
    a.name = "A";
    a.size = 64;
    MemObject b;
    b.name = "B";
    b.size = 128;
    EXPECT_EQ(r.addObject(a), 0u);
    EXPECT_EQ(r.addObject(b), 1u);
    EXPECT_EQ(r.object(1).name, "B");
}

TEST(Region, LayoutObjectsDisjoint)
{
    Region r;
    for (int i = 0; i < 5; ++i) {
        MemObject o;
        o.size = 1000;
        r.addObject(o);
    }
    r.layoutObjects(0x1000, 4096);
    for (size_t i = 1; i < 5; ++i) {
        const auto &prev = r.object(static_cast<ObjectId>(i - 1));
        const auto &cur = r.object(static_cast<ObjectId>(i));
        EXPECT_GE(cur.baseAddr, prev.baseAddr + prev.size + 4096);
        EXPECT_EQ(cur.baseAddr % 64, 0u);
    }
}

TEST(Region, FinalizeBuildsUsersAndMemOps)
{
    RegionBuilder b("t");
    ObjectId obj = b.object("A", 4096);
    OpId c = b.constant(1);
    OpId ld = b.load(b.at(obj, 0));
    OpId sum = b.iadd(c, ld);
    OpId st = b.store(b.at(obj, 64), sum);
    Region r = b.build();

    ASSERT_EQ(r.memOps().size(), 2u);
    EXPECT_EQ(r.memOps()[0], ld);
    EXPECT_EQ(r.memOps()[1], st);
    // users: c -> sum, ld -> sum, sum -> st
    ASSERT_EQ(r.users(c).size(), 1u);
    EXPECT_EQ(r.users(c)[0], sum);
    ASSERT_EQ(r.users(sum).size(), 1u);
    EXPECT_EQ(r.users(sum)[0], st);
}

TEST(Region, EvalAddrObjectBase)
{
    RegionBuilder b;
    ObjectId obj = b.object("A", 4096);
    OpId ld = b.load(b.at(obj, 24));
    Region r = b.build();
    uint64_t base = r.object(obj).baseAddr;
    EXPECT_EQ(r.evalAddr(ld, 0), base + 24);
    EXPECT_EQ(r.evalAddr(ld, 9), base + 24); // no invocation term
}

TEST(Region, EvalAddrStreamAdvancesPerInvocation)
{
    RegionBuilder b;
    ObjectId obj = b.object("A", 1 << 20);
    OpId ld = b.load(b.stream(obj, 8, 16));
    Region r = b.build();
    uint64_t base = r.object(obj).baseAddr;
    EXPECT_EQ(r.evalAddr(ld, 0), base + 16);
    EXPECT_EQ(r.evalAddr(ld, 3), base + 16 + 24);
}

TEST(Region, EvalAddrParamUsesGroundTruth)
{
    RegionBuilder b;
    ObjectId obj = b.object("A", 4096);
    ParamId p = b.pointerParam("ptr", obj, 128);
    OpId ld = b.load(b.atParam(p, 8));
    Region r = b.build();
    EXPECT_EQ(r.evalAddr(ld, 0), r.object(obj).baseAddr + 128 + 8);
}

TEST(Region, EvalAddr2dUsesStride)
{
    RegionBuilder b;
    ObjectId m = b.object2d("M", 16, 32, DataType::F64);
    OpId ld = b.load(b.at2d(m, 3, 5));
    Region r = b.build();
    EXPECT_EQ(r.evalAddr(ld, 0),
              r.object(m).baseAddr + 3 * 32 * 8 + 5 * 8);
}

TEST(Region, CountsMemAndFloatOps)
{
    RegionBuilder b;
    ObjectId obj = b.object("A", 4096);
    ObjectId loc = b.localObject("L", 256);
    OpId x = b.liveIn(DataType::F64);
    OpId y = b.fmul(x, x);
    b.fadd(y, x);
    b.load(b.at(obj, 0));
    b.scratchLoad(loc, 0);
    Region r = b.build();
    EXPECT_EQ(r.numMemOps(), 1u);
    EXPECT_EQ(r.numScratchpadOps(), 1u);
    EXPECT_EQ(r.numFloatOps(), 2u);
}

TEST(RegionDeathTest, OperandMustPrecedeUser)
{
    Region r;
    Operation op;
    op.kind = OpKind::IAdd;
    op.operands = {5, 6}; // nothing before it
    r.addOp(op);
    EXPECT_DEATH(r.finalize(), "operand must precede");
}

TEST(RegionDeathTest, MemIndexMustBeDense)
{
    Region r;
    MemObject o;
    o.size = 64;
    ObjectId obj = r.addObject(o);
    Operation ld;
    ld.kind = OpKind::Load;
    MemAccess m;
    m.addr.base = {BaseKind::Object, obj};
    m.memIndex = 3; // should be 0
    ld.mem = m;
    r.addOp(ld);
    EXPECT_DEATH(r.finalize(), "dense program order");
}

TEST(RegionDeathTest, DoubleFinalizePanics)
{
    Region r;
    r.finalize();
    EXPECT_DEATH(r.finalize(), "double finalize");
}

TEST(Dot, EmitsNodesAndEdges)
{
    RegionBuilder b("dotr");
    ObjectId obj = b.object("A", 128);
    OpId c = b.constant(4);
    OpId ld = b.load(b.at(obj, 0));
    OpId s = b.iadd(c, ld);
    b.store(b.at(obj, 8), s);
    Region r = b.build();
    std::string dot = dotString(r);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("load"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

} // namespace
} // namespace nachos
