#include <gtest/gtest.h>

#include "ir/addr_expr.hh"

namespace nachos {
namespace {

TEST(AddrExpr, CanonicalizeSortsAndMerges)
{
    AddrExpr e;
    e.terms = {{3, 2}, {1, 5}, {3, -2}, {2, 0}};
    e.canonicalize();
    ASSERT_EQ(e.terms.size(), 1u); // sym 3 cancels, sym 2 zero-coeff
    EXPECT_EQ(e.terms[0].sym, 1u);
    EXPECT_EQ(e.terms[0].coeff, 5);
}

TEST(AddrExpr, CoeffOfMissingIsZero)
{
    AddrExpr e;
    e.terms = {{1, 5}};
    EXPECT_EQ(e.coeffOf(1), 5);
    EXPECT_EQ(e.coeffOf(2), 0);
}

TEST(AddrExpr, SubtractCancelsCommonTerms)
{
    AddrExpr a, b;
    a.base = {BaseKind::Object, 0};
    b.base = {BaseKind::Object, 0};
    a.constOffset = 16;
    b.constOffset = 8;
    a.terms = {{0, 8}, {1, 3}};
    b.terms = {{0, 8}, {2, 4}};
    a.canonicalize();
    b.canonicalize();
    AddrDiff d = subtractExprs(a, b);
    EXPECT_EQ(d.constDiff, 8);
    ASSERT_EQ(d.terms.size(), 2u);
    EXPECT_EQ(d.terms[0].sym, 1u);
    EXPECT_EQ(d.terms[0].coeff, 3);
    EXPECT_EQ(d.terms[1].sym, 2u);
    EXPECT_EQ(d.terms[1].coeff, -4);
}

TEST(AddrExpr, SubtractIdenticalIsConstantZero)
{
    AddrExpr a;
    a.base = {BaseKind::Param, 2};
    a.terms = {{0, 8}};
    AddrDiff d = subtractExprs(a, a);
    EXPECT_TRUE(d.isConstant());
    EXPECT_EQ(d.constDiff, 0);
}

TEST(AddrExprDeathTest, SubtractDifferentBasesPanics)
{
    AddrExpr a, b;
    a.base = {BaseKind::Object, 0};
    b.base = {BaseKind::Object, 1};
    EXPECT_DEATH(subtractExprs(a, b), "identical bases");
}

TEST(OpaqueValue, DeterministicAndBounded)
{
    Symbol s;
    s.kind = SymKind::Opaque;
    s.opaqueSeed = 42;
    s.opaqueModulus = 100;
    s.opaqueScale = 8;
    s.opaqueBias = 64;
    for (uint64_t inv = 0; inv < 50; ++inv) {
        int64_t v1 = opaqueValue(s, inv);
        int64_t v2 = opaqueValue(s, inv);
        EXPECT_EQ(v1, v2);
        EXPECT_GE(v1, 64);
        EXPECT_LT(v1, 64 + 100 * 8);
        EXPECT_EQ((v1 - 64) % 8, 0);
    }
}

TEST(OpaqueValue, VariesAcrossInvocations)
{
    Symbol s;
    s.kind = SymKind::Opaque;
    s.opaqueSeed = 7;
    s.opaqueModulus = 1 << 20;
    int distinct = 0;
    int64_t prev = -1;
    for (uint64_t inv = 0; inv < 20; ++inv) {
        int64_t v = opaqueValue(s, inv);
        distinct += v != prev;
        prev = v;
    }
    EXPECT_GT(distinct, 15);
}

TEST(HasSymbolOfKind, ChecksTable)
{
    std::vector<Symbol> tab(2);
    tab[0].kind = SymKind::Invocation;
    tab[1].kind = SymKind::DimStride;
    AddrExpr e;
    e.terms = {{0, 4}};
    EXPECT_TRUE(e.hasSymbolOfKind(SymKind::Invocation, tab));
    EXPECT_FALSE(e.hasSymbolOfKind(SymKind::DimStride, tab));
}

} // namespace
} // namespace nachos
