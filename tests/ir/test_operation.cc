#include <limits>

#include <gtest/gtest.h>

#include "ir/operation.hh"

namespace nachos {
namespace {

TEST(EvalCompute, IntegerSemantics)
{
    EXPECT_EQ(evalCompute(OpKind::IAdd, 3, 4), 7);
    EXPECT_EQ(evalCompute(OpKind::ISub, 3, 4), -1);
    EXPECT_EQ(evalCompute(OpKind::IMul, 3, 4), 12);
    EXPECT_EQ(evalCompute(OpKind::IXor, 0b1100, 0b1010), 0b0110);
    EXPECT_EQ(evalCompute(OpKind::IAnd, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(evalCompute(OpKind::IOr, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(evalCompute(OpKind::IShl, 1, 4), 16);
    EXPECT_EQ(evalCompute(OpKind::ICmp, 1, 2), 1);
    EXPECT_EQ(evalCompute(OpKind::ICmp, 2, 1), 0);
}

TEST(EvalCompute, ShiftMasksAmountLikeHardware)
{
    EXPECT_EQ(evalCompute(OpKind::IShl, 1, 64), 1); // 64 & 63 == 0
    EXPECT_EQ(evalCompute(OpKind::IShl, 1, 65), 2);
}

TEST(EvalCompute, WrapsModulo64Bits)
{
    int64_t big = static_cast<int64_t>(0x7fffffffffffffffLL);
    EXPECT_EQ(evalCompute(OpKind::IAdd, big, 1),
              std::numeric_limits<int64_t>::min());
}

TEST(EvalCompute, FdivByZeroIsZero)
{
    EXPECT_EQ(evalCompute(OpKind::FDiv, 5, 0), 0);
    EXPECT_EQ(evalCompute(OpKind::FDiv, 12, 4), 3);
}

TEST(EvalComputeDeathTest, NonBinaryKindPanics)
{
    EXPECT_DEATH(evalCompute(OpKind::Load, 1, 2), "non-binary");
}

TEST(OpKindNames, NewKindsNamed)
{
    EXPECT_STREQ(opKindName(OpKind::IAnd), "iand");
    EXPECT_STREQ(opKindName(OpKind::IOr), "ior");
    EXPECT_STREQ(opKindName(OpKind::IShl), "ishl");
}

} // namespace
} // namespace nachos
