#include <gtest/gtest.h>

#include "ir/builder.hh"

namespace nachos {
namespace {

TEST(Builder, MemIndexAssignedInProgramOrder)
{
    RegionBuilder b;
    ObjectId obj = b.object("A", 4096);
    OpId l0 = b.load(b.at(obj, 0));
    OpId s0 = b.store(b.at(obj, 8), l0);
    OpId l1 = b.load(b.at(obj, 16));
    Region r = b.build();
    EXPECT_EQ(r.op(l0).mem->memIndex, 0u);
    EXPECT_EQ(r.op(s0).mem->memIndex, 1u);
    EXPECT_EQ(r.op(l1).mem->memIndex, 2u);
}

TEST(Builder, ScratchOpsGetNoMemIndex)
{
    RegionBuilder b;
    ObjectId loc = b.localObject("L", 512);
    ObjectId obj = b.object("A", 512);
    OpId sl = b.scratchLoad(loc, 0);
    OpId gl = b.load(b.at(obj, 0));
    Region r = b.build();
    EXPECT_EQ(r.op(sl).mem->memIndex, kNoMemIndex);
    EXPECT_TRUE(r.op(sl).mem->scratchpad);
    EXPECT_EQ(r.op(gl).mem->memIndex, 0u);
    EXPECT_EQ(r.memOps().size(), 1u);
}

TEST(Builder, OpaqueSymWiresProducerDependence)
{
    RegionBuilder b;
    ObjectId idxs = b.object("idx", 4096);
    ObjectId data = b.object("data", 1 << 16);
    OpId idx_load = b.load(b.at(idxs, 0));
    SymbolId osym = b.opaqueSym("i", idx_load, 1024, 8);
    AddrExpr gather = b.at(data, 0);
    gather.terms.push_back({osym, 1});
    OpId g = b.load(gather);
    Region r = b.build();
    // The gather load must depend on the index load.
    ASSERT_EQ(r.op(g).operands.size(), 1u);
    EXPECT_EQ(r.op(g).operands[0], idx_load);
}

TEST(Builder, OpaqueBaseWiresProducerDependence)
{
    RegionBuilder b;
    ObjectId heap = b.object("heap", 1 << 16);
    OpId ptr_load = b.load(b.at(heap, 0), 8, {}, DataType::Ptr);
    SymbolId osym = b.opaqueSym("p", ptr_load, 512, 64);
    OpId chase = b.load(b.opaque(osym, 16));
    Region r = b.build();
    ASSERT_EQ(r.op(chase).operands.size(), 1u);
    EXPECT_EQ(r.op(chase).operands[0], ptr_load);
}

TEST(Builder, StoreDataIsFirstOperand)
{
    RegionBuilder b;
    ObjectId obj = b.object("A", 128);
    OpId v = b.constant(7);
    OpId dep = b.constant(1);
    OpId st = b.store(b.at(obj, 0), v, 8, {dep});
    Region r = b.build();
    ASSERT_EQ(r.op(st).operands.size(), 2u);
    EXPECT_EQ(r.op(st).operands[0], v);
    EXPECT_EQ(r.op(st).operands[1], dep);
    EXPECT_EQ(r.op(st).firstAddrOperand(), 1u);
}

TEST(Builder, InvocationSymIsShared)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 1 << 20);
    ObjectId c = b.object("C", 1 << 20);
    OpId l1 = b.load(b.stream(a, 8));
    OpId l2 = b.load(b.stream(c, 16));
    Region r = b.build();
    EXPECT_EQ(r.op(l1).mem->addr.terms[0].sym,
              r.op(l2).mem->addr.terms[0].sym);
}

TEST(Builder, At2dAddsInvocationTermWhenRequested)
{
    RegionBuilder b;
    ObjectId m = b.object2d("M", 64, 64);
    OpId ld = b.load(b.at2d(m, 1, 2, 512));
    Region r = b.build();
    const AddrExpr &e = r.op(ld).mem->addr;
    EXPECT_EQ(e.terms.size(), 2u); // row-stride term + invocation term
}

TEST(Builder, Object3dGroundTruthAddressing)
{
    RegionBuilder b;
    ObjectId lat = b.object3d("L", 4, 8, 16, DataType::F64);
    OpId ld = b.load(b.at3d(lat, 2, 3, 5));
    Region r = b.build();
    const uint64_t base = r.object(lat).baseAddr;
    EXPECT_EQ(r.evalAddr(ld, 0),
              base + 2 * (8 * 16 * 8) + 3 * (16 * 8) + 5 * 8);
}

TEST(BuilderDeathTest, ScratchLoadOnGlobalPanics)
{
    RegionBuilder b;
    ObjectId obj = b.object("A", 128);
    EXPECT_DEATH(b.scratchLoad(obj, 0), "local object");
}

TEST(BuilderDeathTest, RowStrideOfFlatObjectPanics)
{
    RegionBuilder b;
    ObjectId obj = b.object("A", 128);
    EXPECT_DEATH(b.rowStrideSym(obj), "row-stride");
}

} // namespace
} // namespace nachos
