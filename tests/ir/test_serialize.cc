#include <gtest/gtest.h>

#include "harness/golden.hh"
#include "ir/builder.hh"
#include "ir/serialize.hh"
#include "testing/region_gen.hh"
#include "workloads/suite.hh"

namespace nachos {
namespace {

TEST(Serialize, RoundTripSmallRegion)
{
    RegionBuilder b("small");
    ObjectId a = b.object("A", 4096);
    ObjectId m2 = b.object2d("M", 8, 8);
    ParamId p = b.pointerParam("ptr", a, 16);
    b.paramProvenance(p, a, 16);
    b.paramRestrict(p);
    OpId v = b.liveIn();
    b.store(b.atParam(p, 0), v);
    b.load(b.at2d(m2, 1, 2));
    b.liveOut(v);
    Region original = b.build();

    Region parsed = regionFromString(regionToString(original));
    EXPECT_TRUE(regionsEquivalent(original, parsed));
    EXPECT_EQ(parsed.name(), "small");
    EXPECT_EQ(parsed.numOps(), original.numOps());
    EXPECT_TRUE(parsed.param(p).isRestrict);
    ASSERT_TRUE(parsed.param(p).provenance.has_value());
}

TEST(Serialize, ParsedRegionHasIdenticalGroundTruth)
{
    Region original =
        synthesizeRegion(benchmarkByName("parser"));
    Region parsed = regionFromString(regionToString(original));

    // Same addresses, invocation by invocation...
    for (uint64_t inv = 0; inv < 8; ++inv) {
        for (OpId op : original.memOps())
            EXPECT_EQ(original.evalAddr(op, inv),
                      parsed.evalAddr(op, inv));
    }
    // ...and bit-identical golden execution.
    GoldenResult a = goldenExecute(original, 6);
    GoldenResult b = goldenExecute(parsed, 6);
    EXPECT_EQ(a.loadValueDigest, b.loadValueDigest);
    EXPECT_EQ(a.memImage, b.memImage);
}

class SerializeSuite : public ::testing::TestWithParam<size_t>
{};

TEST_P(SerializeSuite, WholeSuiteRoundTrips)
{
    const BenchmarkInfo &info = benchmarkSuite()[GetParam()];
    Region original = synthesizeRegion(info);
    Region parsed = regionFromString(regionToString(original));
    EXPECT_TRUE(regionsEquivalent(original, parsed))
        << info.shortName;
}

INSTANTIATE_TEST_SUITE_P(All27, SerializeSuite,
                         ::testing::Range(size_t{0}, size_t{27}));

TEST(Serialize, RandomRegionsRoundTrip)
{
    for (uint64_t seed = 0; seed < 10; ++seed) {
        Region original = testing::randomRegion(seed + 9000);
        Region parsed = regionFromString(regionToString(original));
        EXPECT_TRUE(regionsEquivalent(original, parsed))
            << "seed " << seed;
    }
}

TEST(SerializeDeathTest, RejectsWrongMagic)
{
    EXPECT_EXIT(regionFromString("not-a-region v9 end"),
                ::testing::ExitedWithCode(1), "not a nachos-region");
}

TEST(SerializeDeathTest, RejectsTruncation)
{
    Region r = testing::randomRegion(1);
    std::string text = regionToString(r);
    text.resize(text.size() / 2);
    EXPECT_EXIT(regionFromString(text),
                ::testing::ExitedWithCode(1), "");
}

TEST(SerializeDeathTest, RejectsUnknownEntity)
{
    EXPECT_EXIT(regionFromString(
                    "nachos-region v1 name x strict 0 banana end"),
                ::testing::ExitedWithCode(1), "unknown entity");
}

TEST(Serialize, NamesWithSpacesAreSanitized)
{
    Region r("has spaces here");
    r.finalize();
    Region parsed = regionFromString(regionToString(r));
    EXPECT_EQ(parsed.name(), "has_spaces_here");
}

} // namespace
} // namespace nachos
