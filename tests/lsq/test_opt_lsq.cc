#include <gtest/gtest.h>

#include "lsq/opt_lsq.hh"

namespace nachos {
namespace {

class OptLsqTest : public ::testing::Test
{
  protected:
    StatSet stats;
    LsqConfig cfg;
    // 4 mem ops by default; tests that need more build their own.
    OptLsq lsq{cfg, 4, stats};
};

TEST_F(OptLsqTest, InOrderAllocationCascades)
{
    // Op 1's address resolves first; it must wait for op 0.
    auto r1 = lsq.addressReady(1, false, 0x100, 8, 5);
    EXPECT_TRUE(r1.empty()); // blocked behind op 0
    auto r0 = lsq.addressReady(0, false, 0x200, 8, 20);
    ASSERT_EQ(r0.size(), 2u);
    EXPECT_EQ(r0[0].first, 0u);
    EXPECT_EQ(r0[1].first, 1u);
    EXPECT_GE(r0[0].second, 20u + cfg.allocLatency);
    EXPECT_GE(r0[1].second, r0[0].second); // program order preserved
}

TEST_F(OptLsqTest, LoadWithNoStoresGoesToCache)
{
    auto a = lsq.addressReady(0, false, 0x100, 8, 0);
    ASSERT_EQ(a.size(), 1u);
    auto dec = lsq.loadSearch(0, a[0].second);
    EXPECT_EQ(dec.kind, LoadSearchResult::Kind::ToCache);
    EXPECT_EQ(dec.cycle, a[0].second + cfg.searchLatency);
    // Bloom was empty: no CAM search.
    EXPECT_EQ(stats.get("lsq.camLoads"), 0u);
    EXPECT_EQ(stats.get("lsq.bloomMisses"), 1u);
}

TEST_F(OptLsqTest, ExactMatchForwards)
{
    lsq.addressReady(0, true, 0x100, 8, 0);
    auto a = lsq.addressReady(1, false, 0x100, 8, 1);
    auto dec = lsq.loadSearch(1, a[0].second);
    EXPECT_EQ(dec.kind, LoadSearchResult::Kind::ForwardFrom);
    EXPECT_EQ(dec.store, 0u);
    EXPECT_EQ(stats.get("lsq.forwards"), 1u);
    EXPECT_EQ(stats.get("lsq.camLoads"), 1u);
}

TEST_F(OptLsqTest, PartialOverlapWaitsForCommit)
{
    lsq.addressReady(0, true, 0x100, 8, 0);
    auto a = lsq.addressReady(1, false, 0x104, 8, 1);
    auto dec = lsq.loadSearch(1, a[0].second);
    EXPECT_EQ(dec.kind, LoadSearchResult::Kind::WaitCommit);
    EXPECT_EQ(dec.store, 0u);
}

TEST_F(OptLsqTest, YoungestMatchingStoreWins)
{
    lsq.addressReady(0, true, 0x100, 8, 0);
    lsq.addressReady(1, true, 0x100, 8, 1);
    auto a = lsq.addressReady(2, false, 0x100, 8, 2);
    auto dec = lsq.loadSearch(2, a[0].second);
    EXPECT_EQ(dec.kind, LoadSearchResult::Kind::ForwardFrom);
    EXPECT_EQ(dec.store, 1u);
}

TEST_F(OptLsqTest, DrainedStoreInvisibleToSearch)
{
    lsq.addressReady(0, true, 0x100, 8, 0);
    lsq.storeDataArrived(0, 3);
    lsq.storeDrained(0);
    auto a = lsq.addressReady(1, false, 0x100, 8, 10);
    auto dec = lsq.loadSearch(1, a[0].second);
    EXPECT_EQ(dec.kind, LoadSearchResult::Kind::ToCache);
}

TEST_F(OptLsqTest, StoresCommitInProgramOrder)
{
    lsq.addressReady(0, true, 0x100, 8, 0);
    lsq.addressReady(1, true, 0x200, 8, 0);
    // Younger store's data arrives first: nothing commits yet.
    auto c1 = lsq.storeDataArrived(1, 5);
    EXPECT_TRUE(c1.empty());
    // Older store's data arrives: both commit, in order.
    auto c0 = lsq.storeDataArrived(0, 50);
    ASSERT_EQ(c0.size(), 2u);
    EXPECT_EQ(c0[0].first, 0u);
    EXPECT_EQ(c0[1].first, 1u);
    EXPECT_LT(c0[0].second, c0[1].second);
    EXPECT_GE(c0[1].second, 50u);
}

TEST_F(OptLsqTest, AllDrainedTracksLifecycle)
{
    EXPECT_FALSE(lsq.allDrained());
    LsqConfig small_cfg;
    OptLsq small(small_cfg, 2, stats);
    small.addressReady(0, true, 0x100, 8, 0);
    small.addressReady(1, false, 0x200, 8, 1);
    small.storeDataArrived(0, 2);
    small.storeDrained(0);
    EXPECT_FALSE(small.allDrained());
    small.loadDone(1);
    EXPECT_TRUE(small.allDrained());
}

TEST_F(OptLsqTest, ResetRestoresFreshState)
{
    lsq.addressReady(0, true, 0x100, 8, 0);
    lsq.reset();
    auto a = lsq.addressReady(0, false, 0x100, 8, 0);
    ASSERT_EQ(a.size(), 1u);
    auto dec = lsq.loadSearch(0, a[0].second);
    // Bloom was cleared: the old store's address is gone.
    EXPECT_EQ(dec.kind, LoadSearchResult::Kind::ToCache);
}

TEST_F(OptLsqTest, BankPortContentionDelaysAllocation)
{
    LsqConfig one_bank;
    one_bank.banks = 1;
    one_bank.portsPerBank = 1;
    OptLsq tight(one_bank, 3, stats);
    tight.addressReady(2, false, 0x300, 8, 0);
    tight.addressReady(1, false, 0x200, 8, 0);
    auto a = tight.addressReady(0, false, 0x100, 8, 0);
    ASSERT_EQ(a.size(), 3u);
    // One port: allocations serialize across cycles.
    EXPECT_LT(a[0].second, a[1].second);
    EXPECT_LT(a[1].second, a[2].second);
}

TEST_F(OptLsqTest, StoreAllocProbesBloomBeforeInserting)
{
    lsq.addressReady(0, true, 0x100, 8, 0);
    // The store probes BEFORE inserting its own address: an empty
    // filter yields no CAM charge (no self-hits).
    EXPECT_EQ(stats.get("lsq.bloomProbes"), 1u);
    EXPECT_EQ(stats.get("lsq.camStores"), 0u);
    // A second store to the same address does hit.
    lsq.addressReady(1, true, 0x100, 8, 1);
    EXPECT_EQ(stats.get("lsq.camStores"), 1u);
}

TEST_F(OptLsqTest, DeathOnDoubleAddressReady)
{
    lsq.addressReady(0, false, 0x100, 8, 0);
    EXPECT_DEATH(lsq.addressReady(0, false, 0x100, 8, 1), "twice");
}

} // namespace
} // namespace nachos
