#include <gtest/gtest.h>

#include "lsq/bloom.hh"

namespace nachos {
namespace {

TEST(Bloom, InsertQueryRemove)
{
    BloomFilter bloom;
    EXPECT_FALSE(bloom.mayContain(0x100, 8));
    bloom.insert(0x100, 8);
    EXPECT_TRUE(bloom.mayContain(0x100, 8));
    bloom.remove(0x100, 8);
    EXPECT_FALSE(bloom.mayContain(0x100, 8));
    EXPECT_TRUE(bloom.empty());
}

TEST(Bloom, NoFalseNegatives)
{
    BloomFilter bloom;
    for (uint64_t a = 0; a < 100; ++a)
        bloom.insert(0x1000 + a * 24, 8);
    for (uint64_t a = 0; a < 100; ++a)
        EXPECT_TRUE(bloom.mayContain(0x1000 + a * 24, 8));
}

TEST(Bloom, RangeStraddlingGranules)
{
    BloomFilter bloom;
    bloom.insert(0x104, 8); // covers granules 0x100 and 0x108
    EXPECT_TRUE(bloom.mayContain(0x100, 4));
    EXPECT_TRUE(bloom.mayContain(0x108, 8));
    bloom.remove(0x104, 8);
    EXPECT_TRUE(bloom.empty());
}

TEST(Bloom, CountingSurvivesDuplicates)
{
    BloomFilter bloom;
    bloom.insert(0x200, 8);
    bloom.insert(0x200, 8);
    bloom.remove(0x200, 8);
    EXPECT_TRUE(bloom.mayContain(0x200, 8)); // one copy remains
    bloom.remove(0x200, 8);
    EXPECT_FALSE(bloom.mayContain(0x200, 8));
}

TEST(Bloom, FalsePositiveRateIsModest)
{
    BloomConfig cfg;
    cfg.counters = 1024;
    BloomFilter bloom(cfg);
    for (uint64_t a = 0; a < 32; ++a)
        bloom.insert(0x10000 + a * 8, 8);
    int fp = 0;
    for (uint64_t a = 0; a < 1000; ++a) {
        if (bloom.mayContain(0x900000 + a * 8, 8))
            ++fp;
    }
    EXPECT_LT(fp, 100); // well under 10%
}

TEST(BloomDeathTest, RemoveWithoutInsertPanics)
{
    BloomFilter bloom;
    EXPECT_DEATH(bloom.remove(0x300, 8), "without insert");
}

TEST(BloomDeathTest, NonPowerOfTwoCountersPanics)
{
    BloomConfig cfg;
    cfg.counters = 100;
    EXPECT_DEATH(BloomFilter{cfg}, "power of two");
}

} // namespace
} // namespace nachos
