#include <gtest/gtest.h>

#include <string>

#include "support/alloc_hook.hh"
#include "support/json.hh"

namespace nachos {
namespace {

TEST(Json, ScalarRoundTrips)
{
    EXPECT_EQ(dumpJson(JsonValue()), "null");
    EXPECT_EQ(dumpJson(JsonValue(true)), "true");
    EXPECT_EQ(dumpJson(JsonValue(false)), "false");
    EXPECT_EQ(dumpJson(JsonValue(uint64_t{0})), "0");
    EXPECT_EQ(dumpJson(JsonValue(UINT64_MAX)), "18446744073709551615");
    EXPECT_EQ(dumpJson(JsonValue(int64_t{-42})), "-42");
    EXPECT_EQ(dumpJson(JsonValue(1.5)), "1.5");
    EXPECT_EQ(dumpJson(JsonValue("hi")), "\"hi\"");
}

TEST(Json, Uint64SurvivesParseDump)
{
    // 64-bit digests above 2^53 must not go through double.
    const std::string text = "18446744073709551615";
    JsonParseResult r = parseJson(text);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(r.value.isU64());
    EXPECT_EQ(r.value.asU64(), UINT64_MAX);
    EXPECT_EQ(dumpJson(r.value), text);
}

TEST(Json, NegativeAndDoubleNumbers)
{
    JsonParseResult r = parseJson("[-9223372036854775808, 2.5, 1e3]");
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.value.at(0).isI64());
    EXPECT_EQ(r.value.at(0).asI64(), INT64_MIN);
    EXPECT_FALSE(r.value.at(1).isU64());
    EXPECT_DOUBLE_EQ(r.value.at(1).asDouble(), 2.5);
    // Exponent form parses as double but canonicalizes to the
    // integral spelling when it fits.
    EXPECT_EQ(dumpJson(r.value.at(2)), "1000");
}

TEST(Json, StringEscapes)
{
    JsonParseResult r =
        parseJson("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value.str(), "a\"b\\c\n\tA\xc3\xa9");
    // Control characters re-escape on output.
    EXPECT_EQ(dumpJson(JsonValue(std::string("x\ny"))), "\"x\\ny\"");
    EXPECT_EQ(dumpJson(JsonValue(std::string(1, '\x01'))),
              "\"\\u0001\"");
}

TEST(Json, SurrogatePairDecodes)
{
    JsonParseResult r = parseJson("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value.str(), "\xf0\x9f\x98\x80");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue v = JsonValue::makeObject();
    v.set("zebra", 1);
    v.set("alpha", 2);
    EXPECT_EQ(dumpJson(v), "{\"zebra\":1,\"alpha\":2}");
    v.set("zebra", 3); // replace keeps position
    EXPECT_EQ(dumpJson(v), "{\"zebra\":3,\"alpha\":2}");
    ASSERT_NE(v.find("alpha"), nullptr);
    EXPECT_EQ(v.find("alpha")->asU64(), 2u);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, NestedRoundTrip)
{
    const std::string text =
        "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":[true,false]}}";
    JsonParseResult r = parseJson(text);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(dumpJson(r.value), text);
}

TEST(Json, PrettyPrint)
{
    JsonValue v = JsonValue::makeObject();
    v.set("a", 1);
    JsonValue arr = JsonValue::makeArray();
    arr.push(2);
    v.set("b", std::move(arr));
    EXPECT_EQ(dumpJson(v, 2),
              "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, MalformedInputsReportErrors)
{
    const char *bad[] = {
        "",          "{",          "[1,",      "\"unterminated",
        "tru",       "01",         "1.",       "1e",
        "{\"a\":}",  "{\"a\" 1}",  "{1:2}",    "[1 2]",
        "\"\\x\"",   "\"\\u12\"",  "nullX",    "1 2",
        "{\"a\":1,}" };
    for (const char *text : bad) {
        JsonParseResult r = parseJson(text);
        EXPECT_FALSE(r.ok) << "accepted: " << text;
        EXPECT_FALSE(r.error.empty()) << text;
    }
}

TEST(Json, RawControlCharacterRejected)
{
    JsonParseResult r = parseJson("\"a\nb\"");
    EXPECT_FALSE(r.ok);
}

TEST(Json, DepthLimit)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    EXPECT_FALSE(parseJson(deep).ok);
    // A comfortably-nested document still parses.
    EXPECT_TRUE(parseJson("[[[[[[[[[[1]]]]]]]]]]").ok);
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    EXPECT_EQ(dumpJson(JsonValue(
                  std::numeric_limits<double>::infinity())),
              "null");
}

TEST(JsonWriter, ByteIdenticalToTreeDump)
{
    // The same logical document through both encoders.
    JsonValue v = JsonValue::makeObject();
    v.set("v", 1);
    v.set("name", "he said \"hi\"\n");
    v.set("digest", UINT64_MAX);
    v.set("delta", int64_t{-42});
    v.set("ratio", 1.5);
    v.set("whole", 3.0); // double holding an integral value
    v.set("flag", true);
    v.set("nothing", JsonValue());
    JsonValue arr = JsonValue::makeArray();
    arr.push(uint64_t{7});
    JsonValue inner = JsonValue::makeObject();
    inner.set("empty", JsonValue::makeObject());
    arr.push(std::move(inner));
    v.set("items", std::move(arr));

    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("v");
    w.value(1);
    w.key("name");
    w.value("he said \"hi\"\n");
    w.key("digest");
    w.value(UINT64_MAX);
    w.key("delta");
    w.value(int64_t{-42});
    w.key("ratio");
    w.value(1.5);
    w.key("whole");
    w.value(3.0);
    w.key("flag");
    w.value(true);
    w.key("nothing");
    w.null();
    w.key("items");
    w.beginArray();
    w.value(uint64_t{7});
    w.beginObject();
    w.key("empty");
    w.beginObject();
    w.endObject();
    w.endObject();
    w.endArray();
    w.endObject();

    EXPECT_EQ(out, dumpJson(v));
}

TEST(JsonWriter, EmbeddedSubtreeMatchesDump)
{
    JsonValue subtree = JsonValue::makeObject();
    subtree.set("p99", uint64_t{1023});
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("latency");
    w.value(subtree);
    w.endObject();
    JsonValue v = JsonValue::makeObject();
    v.set("latency", std::move(subtree));
    EXPECT_EQ(out, dumpJson(v));
}

TEST(JsonDumpTo, AppendsWithoutClearing)
{
    JsonValue v = JsonValue::makeObject();
    v.set("a", 1);
    std::string out = "prefix:";
    dumpJsonTo(v, out);
    EXPECT_EQ(out, "prefix:{\"a\":1}");
}

TEST(JsonInPlace, MatchesFreshParse)
{
    const char *docs[] = {
        "{\"v\":1,\"id\":7,\"type\":\"run\",\"run\":{\"workload\":"
        "\"164.gzip\",\"backends\":[\"nachos\",\"sw\"]}}",
        "{\"v\":1,\"id\":8,\"type\":\"ping\"}",
        "[1,-2,3.5,18446744073709551615,\"x\",null,true]",
        "{\"dup\":1,\"dup\":2}", // duplicate key: last wins
        "\"scalar\"",
    };
    JsonValue reuse;
    for (const char *doc : docs) {
        const JsonParseStatus st = parseJsonInPlace(doc, reuse);
        ASSERT_TRUE(st.ok) << doc << ": " << st.error;
        const JsonParseResult fresh = parseJson(doc);
        ASSERT_TRUE(fresh.ok) << doc;
        EXPECT_EQ(dumpJson(reuse), dumpJson(fresh.value)) << doc;
    }
}

TEST(JsonInPlace, ShrinkingDocumentsDropStaleMembers)
{
    JsonValue reuse;
    ASSERT_TRUE(parseJsonInPlace(
                    "{\"a\":{\"deep\":[1,2,3]},\"b\":2,\"c\":3}",
                    reuse)
                    .ok);
    // Re-parse a smaller object into the same tree: members and array
    // items beyond the new document must disappear.
    ASSERT_TRUE(parseJsonInPlace("{\"a\":[9]}", reuse).ok);
    EXPECT_EQ(dumpJson(reuse), "{\"a\":[9]}");
}

TEST(JsonInPlace, ErrorsMatchStrictParser)
{
    JsonValue reuse;
    for (const char *bad :
         {"{", "[1,]", "{\"a\":01}", "garbage", "\"unterminated",
          "{\"a\":1}x"}) {
        EXPECT_FALSE(parseJsonInPlace(bad, reuse).ok) << bad;
        EXPECT_FALSE(parseJson(bad).ok) << bad;
    }
    // A failed parse leaves the value reusable.
    ASSERT_TRUE(parseJsonInPlace("{\"ok\":true}", reuse).ok);
    EXPECT_EQ(dumpJson(reuse), "{\"ok\":true}");
}

TEST(JsonZeroAlloc, SteadyStateParseAndEncodeAllocateNothing)
{
    // The serving plane's steady state: parse a same-shaped request
    // line into a reused tree, then encode a response into a reused
    // buffer. After one warm-up iteration, neither side may touch the
    // heap.
    const std::string line =
        "{\"v\":1,\"id\":42,\"type\":\"run\",\"run\":{\"workload\":"
        "\"164.gzip\",\"seed\":7,\"backends\":[\"nachos\"]}}";
    JsonValue reuse;
    std::string out;
    out.reserve(256);
    auto iteration = [&] {
        ASSERT_TRUE(parseJsonInPlace(line, reuse).ok);
        out.clear();
        JsonWriter w(out);
        w.beginObject();
        w.key("v");
        w.value(1);
        w.key("id");
        w.value(reuse.find("id")->asU64());
        w.key("type");
        w.value("result");
        w.key("cycles");
        w.value(uint64_t{123456789});
        w.endObject();
    };
    iteration(); // warm up buffers to their high-water mark

    const uint64_t before = threadAllocCount();
    for (int i = 0; i < 100; ++i)
        iteration();
    EXPECT_EQ(threadAllocCount() - before, 0u)
        << "steady-state parse/encode touched the heap";
}

} // namespace
} // namespace nachos
