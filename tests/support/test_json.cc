#include <gtest/gtest.h>

#include <string>

#include "support/json.hh"

namespace nachos {
namespace {

TEST(Json, ScalarRoundTrips)
{
    EXPECT_EQ(dumpJson(JsonValue()), "null");
    EXPECT_EQ(dumpJson(JsonValue(true)), "true");
    EXPECT_EQ(dumpJson(JsonValue(false)), "false");
    EXPECT_EQ(dumpJson(JsonValue(uint64_t{0})), "0");
    EXPECT_EQ(dumpJson(JsonValue(UINT64_MAX)), "18446744073709551615");
    EXPECT_EQ(dumpJson(JsonValue(int64_t{-42})), "-42");
    EXPECT_EQ(dumpJson(JsonValue(1.5)), "1.5");
    EXPECT_EQ(dumpJson(JsonValue("hi")), "\"hi\"");
}

TEST(Json, Uint64SurvivesParseDump)
{
    // 64-bit digests above 2^53 must not go through double.
    const std::string text = "18446744073709551615";
    JsonParseResult r = parseJson(text);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(r.value.isU64());
    EXPECT_EQ(r.value.asU64(), UINT64_MAX);
    EXPECT_EQ(dumpJson(r.value), text);
}

TEST(Json, NegativeAndDoubleNumbers)
{
    JsonParseResult r = parseJson("[-9223372036854775808, 2.5, 1e3]");
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.value.at(0).isI64());
    EXPECT_EQ(r.value.at(0).asI64(), INT64_MIN);
    EXPECT_FALSE(r.value.at(1).isU64());
    EXPECT_DOUBLE_EQ(r.value.at(1).asDouble(), 2.5);
    // Exponent form parses as double but canonicalizes to the
    // integral spelling when it fits.
    EXPECT_EQ(dumpJson(r.value.at(2)), "1000");
}

TEST(Json, StringEscapes)
{
    JsonParseResult r =
        parseJson("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value.str(), "a\"b\\c\n\tA\xc3\xa9");
    // Control characters re-escape on output.
    EXPECT_EQ(dumpJson(JsonValue(std::string("x\ny"))), "\"x\\ny\"");
    EXPECT_EQ(dumpJson(JsonValue(std::string(1, '\x01'))),
              "\"\\u0001\"");
}

TEST(Json, SurrogatePairDecodes)
{
    JsonParseResult r = parseJson("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.value.str(), "\xf0\x9f\x98\x80");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue v = JsonValue::makeObject();
    v.set("zebra", 1);
    v.set("alpha", 2);
    EXPECT_EQ(dumpJson(v), "{\"zebra\":1,\"alpha\":2}");
    v.set("zebra", 3); // replace keeps position
    EXPECT_EQ(dumpJson(v), "{\"zebra\":3,\"alpha\":2}");
    ASSERT_NE(v.find("alpha"), nullptr);
    EXPECT_EQ(v.find("alpha")->asU64(), 2u);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, NestedRoundTrip)
{
    const std::string text =
        "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":[true,false]}}";
    JsonParseResult r = parseJson(text);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(dumpJson(r.value), text);
}

TEST(Json, PrettyPrint)
{
    JsonValue v = JsonValue::makeObject();
    v.set("a", 1);
    JsonValue arr = JsonValue::makeArray();
    arr.push(2);
    v.set("b", std::move(arr));
    EXPECT_EQ(dumpJson(v, 2),
              "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, MalformedInputsReportErrors)
{
    const char *bad[] = {
        "",          "{",          "[1,",      "\"unterminated",
        "tru",       "01",         "1.",       "1e",
        "{\"a\":}",  "{\"a\" 1}",  "{1:2}",    "[1 2]",
        "\"\\x\"",   "\"\\u12\"",  "nullX",    "1 2",
        "{\"a\":1,}" };
    for (const char *text : bad) {
        JsonParseResult r = parseJson(text);
        EXPECT_FALSE(r.ok) << "accepted: " << text;
        EXPECT_FALSE(r.error.empty()) << text;
    }
}

TEST(Json, RawControlCharacterRejected)
{
    JsonParseResult r = parseJson("\"a\nb\"");
    EXPECT_FALSE(r.ok);
}

TEST(Json, DepthLimit)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += "[";
    EXPECT_FALSE(parseJson(deep).ok);
    // A comfortably-nested document still parses.
    EXPECT_TRUE(parseJson("[[[[[[[[[[1]]]]]]]]]]").ok);
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    EXPECT_EQ(dumpJson(JsonValue(
                  std::numeric_limits<double>::infinity())),
              "null");
}

} // namespace
} // namespace nachos
