#include <gtest/gtest.h>

#include <set>

#include "support/value_hash.hh"

namespace nachos {
namespace {

TEST(ValueHash, Mix64IsDeterministicAndDispersed)
{
    std::set<uint64_t> outputs;
    for (uint64_t i = 0; i < 1000; ++i)
        outputs.insert(valueMix64(i));
    EXPECT_EQ(outputs.size(), 1000u);
    EXPECT_EQ(valueMix64(42), valueMix64(42));
}

TEST(ValueHash, LiveInVariesByOpAndInvocation)
{
    EXPECT_NE(liveInValueFor(1, 0), liveInValueFor(2, 0));
    EXPECT_NE(liveInValueFor(1, 0), liveInValueFor(1, 1));
    EXPECT_EQ(liveInValueFor(7, 3), liveInValueFor(7, 3));
}

TEST(ValueHash, DigestTermOrderInsensitiveBySum)
{
    // The digest is a sum of per-load terms: any completion order of
    // the same observations yields the same total.
    uint64_t a = loadDigestTerm(1, 0, 100);
    uint64_t b = loadDigestTerm(2, 0, 200);
    uint64_t c = loadDigestTerm(3, 1, 300);
    EXPECT_EQ(a + b + c, c + a + b);
}

TEST(ValueHash, DigestTermSensitiveToEachField)
{
    uint64_t base = loadDigestTerm(1, 2, 3);
    EXPECT_NE(base, loadDigestTerm(2, 2, 3));
    EXPECT_NE(base, loadDigestTerm(1, 3, 3));
    EXPECT_NE(base, loadDigestTerm(1, 2, 4));
}

} // namespace
} // namespace nachos
