#include <gtest/gtest.h>

#include <set>

#include "support/random.hh"

namespace nachos {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differ = 0;
    for (int i = 0; i < 32; ++i)
        differ += a.next() != b.next();
    EXPECT_GT(differ, 28);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(3);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RngDeathTest, BelowZeroBoundPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "positive bound");
}

} // namespace
} // namespace nachos
