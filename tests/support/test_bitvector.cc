#include <gtest/gtest.h>

#include "support/bitvector.hh"

namespace nachos {
namespace {

TEST(BitVector, SetAndTest)
{
    BitVector bv(130);
    EXPECT_FALSE(bv.test(0));
    bv.set(0);
    bv.set(63);
    bv.set(64);
    bv.set(129);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(63));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(129));
    EXPECT_FALSE(bv.test(1));
    EXPECT_FALSE(bv.test(128));
}

TEST(BitVector, Count)
{
    BitVector bv(200);
    for (size_t i = 0; i < 200; i += 3)
        bv.set(i);
    EXPECT_EQ(bv.count(), 67u);
}

TEST(BitVector, UnionWithReportsChange)
{
    BitVector a(70), b(70);
    b.set(5);
    b.set(69);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_TRUE(a.test(5));
    EXPECT_TRUE(a.test(69));
    EXPECT_FALSE(a.unionWith(b)); // no new bits
}

TEST(BitVector, ClearAll)
{
    BitVector bv(64);
    bv.set(10);
    bv.clearAll();
    EXPECT_EQ(bv.count(), 0u);
}

TEST(BitVectorDeathTest, OutOfRangePanics)
{
    BitVector bv(8);
    EXPECT_DEATH(bv.set(8), "out of range");
    EXPECT_DEATH(bv.test(100), "out of range");
}

TEST(BitVectorDeathTest, UnionSizeMismatchPanics)
{
    BitVector a(8), b(16);
    EXPECT_DEATH(a.unionWith(b), "size mismatch");
}

} // namespace
} // namespace nachos
