#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "support/thread_pool.hh"

namespace nachos {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::atomic<int> ran{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([i, &ran] {
            ++ran;
            return i * i;
        }));
    }
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ClampsZeroThreadsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    std::future<int> bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    std::future<int> good = pool.submit([] { return 3; });

    try {
        bad.get();
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
    // A failing task must not poison its siblings or the pool.
    EXPECT_EQ(good.get(), 3);
    EXPECT_EQ(pool.submit([] { return 4; }).get(), 4);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futures;
    {
        // 1 worker, many slow-ish tasks: most are still queued when
        // the destructor runs; all must still complete.
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([i, &ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                ++ran;
                return i;
            }));
        }
    }
    EXPECT_EQ(ran.load(), 32);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> items;
    for (int i = 0; i < 100; ++i)
        items.push_back(i);

    std::vector<int> out = parallelMap(
        pool, items, [](const int &item, size_t idx) {
            // Stagger completion so results arrive out of order.
            std::this_thread::sleep_for(
                std::chrono::microseconds((item % 7) * 50));
            EXPECT_EQ(static_cast<size_t>(item), idx);
            return item * 2;
        });
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[static_cast<size_t>(i)], i * 2);
}

TEST(ThreadPool, ParallelMapPropagatesTaskExceptions)
{
    ThreadPool pool(4);
    const std::vector<int> items = {0, 1, 2, 3, 4, 5};
    EXPECT_THROW(parallelMap(pool, items,
                             [](const int &item, size_t) -> int {
                                 if (item == 3)
                                     throw std::runtime_error("task");
                                 return item;
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvironment)
{
    ASSERT_EQ(setenv("NACHOS_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);

    // Malformed values fall back to hardware concurrency (>= 1).
    ASSERT_EQ(setenv("NACHOS_THREADS", "lots", 1), 0);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);

    ASSERT_EQ(unsetenv("NACHOS_THREADS"), 0);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

} // namespace
} // namespace nachos
