#include <gtest/gtest.h>

#include "support/stats.hh"

namespace nachos {
namespace {

TEST(StatSet, CounterCreatedOnFirstUse)
{
    StatSet stats;
    EXPECT_EQ(stats.get("l1.hits"), 0u);
    stats.counter("l1.hits").inc();
    stats.counter("l1.hits").inc(4);
    EXPECT_EQ(stats.get("l1.hits"), 5u);
}

TEST(StatSet, ResetAllZeroes)
{
    StatSet stats;
    stats.counter("a").inc(3);
    stats.counter("b").inc(7);
    stats.resetAll();
    EXPECT_EQ(stats.get("a"), 0u);
    EXPECT_EQ(stats.get("b"), 0u);
}

TEST(StatSet, DumpSortedByName)
{
    StatSet stats;
    stats.counter("z").inc(1);
    stats.counter("a").inc(2);
    auto dump = stats.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a");
    EXPECT_EQ(dump[1].first, "z");
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1, 2);
    h.sample(3);
    h.sample(10); // overflow
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, Mean)
{
    Histogram h(16);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    Histogram empty(4);
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(Histogram, CumulativeFraction)
{
    Histogram h(8);
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(20); // overflow
    EXPECT_DOUBLE_EQ(h.cumulativeAt(0), 0.25);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(2), 0.75);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(100), 1.0);
}

} // namespace
} // namespace nachos
