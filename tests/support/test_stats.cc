#include <gtest/gtest.h>

#include "support/json.hh"
#include "support/stats.hh"

namespace nachos {
namespace {

TEST(StatSet, CounterCreatedOnFirstUse)
{
    StatSet stats;
    EXPECT_EQ(stats.get("l1.hits"), 0u);
    stats.counter("l1.hits").inc();
    stats.counter("l1.hits").inc(4);
    EXPECT_EQ(stats.get("l1.hits"), 5u);
}

TEST(StatSet, ResetAllZeroes)
{
    StatSet stats;
    stats.counter("a").inc(3);
    stats.counter("b").inc(7);
    stats.resetAll();
    EXPECT_EQ(stats.get("a"), 0u);
    EXPECT_EQ(stats.get("b"), 0u);
}

TEST(StatSet, DumpSortedByName)
{
    StatSet stats;
    stats.counter("z").inc(1);
    stats.counter("a").inc(2);
    auto dump = stats.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a");
    EXPECT_EQ(dump[1].first, "z");
}

TEST(LatencyHistogram, EmptyIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p99(), 0u);
}

TEST(LatencyHistogram, SingleSampleClampsToExactValue)
{
    LatencyHistogram h;
    h.sample(10);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 10u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 10u);
    // Bucket upper bound is 15, but the clamp to the observed range
    // makes every percentile exact for a single sample.
    EXPECT_EQ(h.p50(), 10u);
    EXPECT_EQ(h.p95(), 10u);
    EXPECT_EQ(h.p99(), 10u);
}

TEST(LatencyHistogram, Log2BucketPercentiles)
{
    LatencyHistogram h;
    for (uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 5050u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    // Rank 50 lands in the 32..63 bucket; its upper bound is the
    // answer (exact to within one octave by design).
    EXPECT_EQ(h.p50(), 63u);
    // Ranks 95 and 99 land in the 64..127 bucket, whose upper bound
    // clamps to the observed max of 100.
    EXPECT_EQ(h.p95(), 100u);
    EXPECT_EQ(h.p99(), 100u);
    EXPECT_EQ(h.percentile(1), 1u);
}

TEST(LatencyHistogram, WeightAndBuckets)
{
    LatencyHistogram h;
    h.sample(0);
    h.sample(4, 3);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 12u);
    EXPECT_EQ(h.bucket(0), 1u); // bit-width of 0
    EXPECT_EQ(h.bucket(3), 3u); // bit-width of 4
}

TEST(LatencyHistogram, ResetAndJsonSnapshot)
{
    LatencyHistogram h;
    h.sample(7);
    h.sample(9);
    JsonValue snap = h.jsonSnapshot();
    ASSERT_NE(snap.find("count"), nullptr);
    EXPECT_EQ(snap.find("count")->asU64(), 2u);
    EXPECT_EQ(snap.find("sum")->asU64(), 16u);
    EXPECT_EQ(snap.find("min")->asU64(), 7u);
    EXPECT_EQ(snap.find("max")->asU64(), 9u);
    EXPECT_DOUBLE_EQ(snap.find("mean")->asDouble(), 8.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.p50(), 0u);
}

TEST(StatSet, JsonSnapshotHasCountersAndHistograms)
{
    StatSet stats;
    stats.counter("z.late").inc(2);
    stats.counter("a.early").inc(1);
    stats.histogram("lat.us").sample(100);
    JsonValue snap = stats.jsonSnapshot();
    const JsonValue *counters = snap.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_EQ(counters->members().size(), 2u);
    // Name order, not insertion order.
    EXPECT_EQ(counters->members()[0].first, "a.early");
    EXPECT_EQ(counters->members()[1].first, "z.late");
    EXPECT_EQ(counters->find("z.late")->asU64(), 2u);
    const JsonValue *histograms = snap.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const JsonValue *lat = histograms->find("lat.us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->asU64(), 1u);
    EXPECT_EQ(lat->find("p50")->asU64(), 100u);
}

TEST(StatSet, ResetAllClearsHistograms)
{
    StatSet stats;
    stats.histogram("h").sample(5);
    stats.resetAll();
    EXPECT_EQ(stats.histogram("h").count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1, 2);
    h.sample(3);
    h.sample(10); // overflow
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, Mean)
{
    Histogram h(16);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    Histogram empty(4);
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(Histogram, CumulativeFraction)
{
    Histogram h(8);
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(20); // overflow
    EXPECT_DOUBLE_EQ(h.cumulativeAt(0), 0.25);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(2), 0.75);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(100), 1.0);
}

TEST(LatencyHistogram, MergeAddsBucketsAndBounds)
{
    LatencyHistogram a, b;
    a.sample(10);
    a.sample(1000);
    b.sample(3);
    b.sample(50000);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 10u + 1000u + 3u + 50000u);
    EXPECT_EQ(a.min(), 3u);
    EXPECT_EQ(a.max(), 50000u);
    // Merging an empty histogram changes nothing.
    const uint64_t p99 = a.p99();
    a.merge(LatencyHistogram());
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.p99(), p99);
}

TEST(LatencyHistogram, MergeMatchesCombinedSampling)
{
    // Percentiles after a merge equal those of one histogram that saw
    // every sample directly — the property the per-shard metrics rely
    // on when the daemon folds shard stats into one snapshot.
    LatencyHistogram combined, left, right;
    for (uint64_t v = 1; v <= 200; ++v) {
        combined.sample(v * 7);
        (v % 2 ? left : right).sample(v * 7);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), combined.count());
    EXPECT_EQ(left.sum(), combined.sum());
    EXPECT_EQ(left.p50(), combined.p50());
    EXPECT_EQ(left.p95(), combined.p95());
    EXPECT_EQ(left.p99(), combined.p99());
}

TEST(StatSet, MergeFoldsCountersAndHistograms)
{
    StatSet a, b;
    a.counter("jobs.completed").inc(3);
    a.histogram("latency.totalMicros").sample(100);
    b.counter("jobs.completed").inc(2);
    b.counter("shard.steals").inc(); // only in b
    b.histogram("latency.totalMicros").sample(900);
    b.histogram("batch.lanesPerGroup").sample(4); // only in b
    a.merge(b);
    EXPECT_EQ(a.get("jobs.completed"), 5u);
    EXPECT_EQ(a.get("shard.steals"), 1u);
    EXPECT_EQ(a.histogram("latency.totalMicros").count(), 2u);
    EXPECT_EQ(a.histogram("latency.totalMicros").sum(), 1000u);
    EXPECT_EQ(a.histogram("batch.lanesPerGroup").count(), 1u);
    // b is untouched.
    EXPECT_EQ(b.get("jobs.completed"), 2u);
}

} // namespace
} // namespace nachos
