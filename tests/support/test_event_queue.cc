/**
 * @file
 * CalendarQueue ordering contract: pops come in non-decreasing cycle
 * order with FIFO ordering among same-cycle events — bit-identical to
 * the (cycle, seq) priority queue the simulator used previously. The
 * property test replays random schedules (including schedules issued
 * from within handlers, for the current cycle and far beyond the ring
 * window) against a reference model of the old contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/event_queue.hh"
#include "support/random.hh"

namespace nachos {
namespace {

struct Ev
{
    uint32_t tag = 0;
};

using Queue = CalendarQueue<Ev, 64>;

std::vector<std::pair<uint64_t, uint32_t>>
drain(Queue &q)
{
    std::vector<std::pair<uint64_t, uint32_t>> out;
    Ev ev;
    while (!q.empty()) {
        const uint64_t cycle = q.pop(ev);
        out.push_back({cycle, ev.tag});
    }
    return out;
}

TEST(CalendarQueue, SameCycleEventsPopFifo)
{
    Queue q;
    for (uint32_t i = 0; i < 100; ++i)
        q.schedule(7, {i});
    const auto out = drain(q);
    ASSERT_EQ(out.size(), 100u);
    for (uint32_t i = 0; i < 100; ++i) {
        EXPECT_EQ(out[i].first, 7u);
        EXPECT_EQ(out[i].second, i);
    }
}

TEST(CalendarQueue, CyclesPopInOrderAcrossRingAndOverflow)
{
    Queue q;
    // Far beyond the 64-cycle ring, interleaved with near events.
    q.schedule(1000, {0});
    q.schedule(3, {1});
    q.schedule(500, {2});
    q.schedule(3, {3});
    q.schedule(65, {4}); // outside the initial window
    const auto out = drain(q);
    const std::vector<std::pair<uint64_t, uint32_t>> want = {
        {3, 1}, {3, 3}, {65, 4}, {500, 2}, {1000, 0}};
    EXPECT_EQ(out, want);
}

TEST(CalendarQueue, HandlerMaySchedForCurrentCycle)
{
    // Events scheduled *for the current cycle* from within a handler
    // must run in this cycle, after everything already queued for it —
    // exactly what the old seq tiebreaker guaranteed.
    Queue q;
    q.schedule(5, {0});
    q.schedule(5, {1});
    std::vector<uint32_t> order;
    Ev ev;
    while (!q.empty()) {
        const uint64_t cycle = q.pop(ev);
        EXPECT_EQ(cycle, 5u);
        order.push_back(ev.tag);
        if (ev.tag == 0)
            q.schedule(5, {2}); // from "inside" handler 0
        if (ev.tag == 2)
            q.schedule(5, {3});
    }
    const std::vector<uint32_t> want = {0, 1, 2, 3};
    EXPECT_EQ(order, want);
}

TEST(CalendarQueue, ClockNeverRunsBackwards)
{
    Queue q;
    q.schedule(10, {0});
    Ev ev;
    EXPECT_EQ(q.pop(ev), 10u);
    EXPECT_EQ(q.now(), 10u);
    // Scheduling at now() is allowed; the past would assert.
    q.schedule(10, {1});
    EXPECT_EQ(q.pop(ev), 10u);
}

TEST(CalendarQueue, ReschedulingKeepsWindowInvariantAfterLongJump)
{
    Queue q;
    q.schedule(0, {0});
    q.schedule(100000, {1}); // deep overflow
    Ev ev;
    EXPECT_EQ(q.pop(ev), 0u);
    EXPECT_EQ(q.pop(ev), 100000u);
    EXPECT_EQ(ev.tag, 1u);
    // After the jump the ring must accept nearby cycles again.
    q.schedule(100001, {2});
    q.schedule(100063, {3});
    EXPECT_EQ(q.pop(ev), 100001u);
    EXPECT_EQ(q.pop(ev), 100063u);
    EXPECT_TRUE(q.empty());
}

/**
 * Reference model of the previous engine's contract: a list stably
 * sorted by cycle (stable sort preserves insertion order, i.e. the
 * old seq tiebreaker).
 */
TEST(CalendarQueue, PropertyMatchesPriorityQueueContract)
{
    Rng rng(12345);
    for (int round = 0; round < 50; ++round) {
        Queue q;
        std::vector<std::pair<uint64_t, uint32_t>> model;
        uint32_t tag = 0;

        // Initial burst.
        for (int i = 0; i < 40; ++i) {
            const uint64_t cycle = rng.below(300);
            q.schedule(cycle, {tag});
            model.push_back({cycle, tag});
            ++tag;
        }

        std::vector<std::pair<uint64_t, uint32_t>> got;
        Ev ev;
        while (!q.empty()) {
            const uint64_t cycle = q.pop(ev);
            got.push_back({cycle, ev.tag});
            // Handlers occasionally schedule follow-ups: same cycle,
            // near future, or deep into overflow territory.
            if (rng.below(100) < 30 && tag < 2000) {
                const uint64_t delta =
                    rng.below(100) < 20 ? 0 : 1 + rng.below(400);
                q.schedule(cycle + delta, {tag});
                model.push_back({cycle + delta, tag});
                ++tag;
            }
        }

        std::stable_sort(model.begin(), model.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        ASSERT_EQ(got, model) << "round " << round;
    }
}

TEST(CalendarQueue, RewindRestartsBelowTheClock)
{
    Queue q;
    q.schedule(100, {0});
    const auto first = drain(q);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(q.now(), 100u);

    // An empty queue may rewind; scheduling below the old clock and
    // draining again behaves exactly like a fresh queue.
    q.rewind(5);
    EXPECT_EQ(q.now(), 5u);
    q.schedule(5, {1});
    q.schedule(7, {2});
    q.schedule(5, {3});
    const auto out = drain(q);
    const std::vector<std::pair<uint64_t, uint32_t>> want{
        {5, 1}, {5, 3}, {7, 2}};
    EXPECT_EQ(out, want);
}

TEST(CalendarQueue, RewindClearsTheFinalRingBucket)
{
    // pop() leaves the last bucket allocated with the cursor mid-way;
    // a rewind that lands a multiple of BucketCount below now() maps
    // to the SAME ring slot and must not resurrect stale entries.
    Queue q;
    q.schedule(64, {0});
    q.schedule(64, {1});
    Ev ev;
    (void)q.pop(ev);
    (void)q.pop(ev);
    ASSERT_TRUE(q.empty());

    q.rewind(0); // slot 64 % 64 == slot 0
    q.schedule(0, {2});
    const auto out = drain(q);
    const std::vector<std::pair<uint64_t, uint32_t>> want{{0, 2}};
    EXPECT_EQ(out, want);
}

TEST(CalendarQueue, DrainWaveReturnsOneCycleInFifoOrder)
{
    Queue q;
    q.schedule(9, {0});
    q.schedule(5, {1});
    q.schedule(5, {2});
    q.schedule(500, {3}); // overflow, beyond the 64-cycle ring

    std::vector<Ev> wave;
    EXPECT_EQ(q.drainWave(wave), 5u);
    ASSERT_EQ(wave.size(), 2u); // cycle 9 stays queued
    EXPECT_EQ(wave[0].tag, 1u);
    EXPECT_EQ(wave[1].tag, 2u);
    EXPECT_EQ(q.size(), 2u);

    wave.clear();
    EXPECT_EQ(q.drainWave(wave), 9u);
    ASSERT_EQ(wave.size(), 1u);
    EXPECT_EQ(wave[0].tag, 0u);

    // The overflow event migrates into the ring as the clock advances.
    wave.clear();
    EXPECT_EQ(q.drainWave(wave), 500u);
    ASSERT_EQ(wave.size(), 1u);
    EXPECT_EQ(wave[0].tag, 3u);
    EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, DrainWaveSameCycleReschedulesFormTheNextWave)
{
    // Handlers processing a wave may schedule follow-ups for the SAME
    // cycle; the swap leaves the slot empty, so those form a second
    // wave at the same now() instead of mixing into the first.
    Queue q;
    q.schedule(5, {0});
    std::vector<Ev> wave;
    EXPECT_EQ(q.drainWave(wave), 5u);
    ASSERT_EQ(wave.size(), 1u);

    q.schedule(5, {1});
    q.schedule(5, {2});
    wave.clear();
    EXPECT_EQ(q.drainWave(wave), 5u);
    ASSERT_EQ(wave.size(), 2u);
    EXPECT_EQ(wave[0].tag, 1u);
    EXPECT_EQ(wave[1].tag, 2u);
}

TEST(CalendarQueue, DrainWavePingPongsCapacityWithTheCaller)
{
    // Steady state allocates nothing: the bucket's storage is swapped
    // into the caller's buffer and handed back on the next schedule to
    // that slot. Observable contract: the drained wave reuses capacity
    // at least as large as the previous wave when the caller returns
    // the buffer cleared (not shrunk).
    Queue q;
    for (uint32_t i = 0; i < 32; ++i)
        q.schedule(1, {i});
    std::vector<Ev> wave;
    EXPECT_EQ(q.drainWave(wave), 1u);
    ASSERT_EQ(wave.size(), 32u);
    const size_t cap = wave.capacity();

    wave.clear();
    for (uint32_t i = 0; i < 32; ++i)
        q.schedule(2, {i});
    EXPECT_EQ(q.drainWave(wave), 2u);
    ASSERT_EQ(wave.size(), 32u);
    EXPECT_GE(wave.capacity() + cap, 64u); // one side kept the storage
}

TEST(CalendarQueue, DrainWaveMatchesPopOnRandomSchedules)
{
    // Property: grouping drainWave output by cycle must equal what a
    // pop() loop yields on an identically-scheduled queue, including
    // in-wave follow-up schedules for future cycles.
    Rng rng(999);
    for (int round = 0; round < 20; ++round) {
        Queue byPop;
        Queue byWave;
        uint32_t tag = 0;
        for (int i = 0; i < 60; ++i) {
            const uint64_t cycle = rng.below(200);
            byPop.schedule(cycle, {tag});
            byWave.schedule(cycle, {tag});
            ++tag;
        }
        const auto popped = drain(byPop);

        std::vector<std::pair<uint64_t, uint32_t>> waved;
        std::vector<Ev> wave;
        while (!byWave.empty()) {
            wave.clear();
            const uint64_t cycle = byWave.drainWave(wave);
            for (const Ev &ev : wave)
                waved.push_back({cycle, ev.tag});
        }
        ASSERT_EQ(waved, popped) << "round " << round;
    }
}

TEST(CalendarQueueDeathTest, DrainWaveAfterPartialPopIsFatal)
{
    Queue q;
    q.schedule(3, {0});
    q.schedule(3, {1});
    Ev ev;
    (void)q.pop(ev); // leaves the bucket partially consumed
    std::vector<Ev> wave;
    EXPECT_DEATH(q.drainWave(wave), "partial pop");
}

TEST(CalendarQueueDeathTest, RewindOfNonEmptyQueueIsFatal)
{
    Queue q;
    q.schedule(10, {0});
    EXPECT_DEATH(q.rewind(0), "non-empty");
}

TEST(CalendarQueueDeathTest, RewindForwardsIsFatal)
{
    Queue q;
    q.schedule(10, {0});
    Ev ev;
    (void)q.pop(ev);
    EXPECT_DEATH(q.rewind(11), "forwards");
}

} // namespace
} // namespace nachos
