#include <gtest/gtest.h>

#include "support/logging.hh"

namespace nachos {
namespace {

TEST(Logging, AssertPassesOnTrueCondition)
{
    NACHOS_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(NACHOS_PANIC("boom ", 42), "panic: boom 42");
}

TEST(LoggingDeathTest, AssertAbortsOnFalse)
{
    EXPECT_DEATH(NACHOS_ASSERT(false, "ctx ", 7), "assertion failed");
}

TEST(LoggingDeathTest, FatalExitsWithCode1)
{
    EXPECT_EXIT(NACHOS_FATAL("bad config"),
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(Logging, QuietSuppressesInform)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    inform("this should not print");
    warn("nor this");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

} // namespace
} // namespace nachos
