#include <gtest/gtest.h>

#include "support/table.hh"

namespace nachos {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"short", "1"});
    t.row({"a-much-longer-name", "12345"});
    std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
    // All lines equal width up to trailing spaces: header rule present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, RightAlignsNumbers)
{
    TextTable t;
    t.header({"n"});
    t.row({"5"});
    t.row({"12345"});
    std::string s = t.str();
    // "5" padded to width 5 -> four spaces before it.
    EXPECT_NE(s.find("    5"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"1"});
    t.row({"1", "2", "3"});
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_FALSE(t.str().empty());
}

TEST(Format, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(-1.5, 1), "-1.5");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(Format, FmtPct)
{
    EXPECT_EQ(fmtPct(0.5), "50.0%");
    EXPECT_EQ(fmtPct(0.123, 1), "12.3%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

} // namespace
} // namespace nachos
