#include <gtest/gtest.h>

#include "energy/model.hh"

namespace nachos {
namespace {

namespace ev = energy_events;

TEST(EnergyModel, EmptyStatsMeanZeroEnergy)
{
    StatSet stats;
    EnergyModel model;
    EnergyBreakdown b = model.breakdown(stats);
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
    EXPECT_DOUBLE_EQ(b.frac(b.compute), 0.0);
}

TEST(EnergyModel, ComputeCategorySumsAluAndNetwork)
{
    StatSet stats;
    stats.counter(ev::kIntOps).inc(10);
    stats.counter(ev::kFpOps).inc(2);
    stats.counter(ev::kNetworkTransfers).inc(5);
    EnergyParams p;
    EnergyModel model(p);
    EnergyBreakdown b = model.breakdown(stats);
    EXPECT_DOUBLE_EQ(b.compute, 10 * p.aluInt + 2 * p.aluFp +
                                    5 * p.networkPerLink);
    EXPECT_DOUBLE_EQ(b.total(), b.compute);
}

TEST(EnergyModel, MdeCategoryUsesPaperCosts)
{
    StatSet stats;
    stats.counter(ev::kMdeMay).inc(4);
    stats.counter(ev::kMdeMust).inc(8);
    stats.counter(ev::kMdeForward).inc(1);
    EnergyModel model;
    EnergyBreakdown b = model.breakdown(stats);
    // Paper Figure 3: MAY 500 fJ, MUST 250 fJ.
    EXPECT_DOUBLE_EQ(b.mde, 4 * 500.0 + 8 * 250.0 + 1 * 500.0);
}

TEST(EnergyModel, LsqSplitsBloomAndCam)
{
    StatSet stats;
    stats.counter(ev::kLsqBloom).inc(10);
    stats.counter(ev::kLsqCamLoad).inc(2);
    stats.counter(ev::kLsqCamStore).inc(1);
    stats.counter(ev::kLsqAlloc).inc(10);
    EnergyParams p;
    EnergyModel model(p);
    EnergyBreakdown b = model.breakdown(stats);
    EXPECT_DOUBLE_EQ(b.lsqBloom, 10 * p.lsqBloom);
    EXPECT_DOUBLE_EQ(b.lsqCam, 2 * p.lsqCamLoad + 1 * p.lsqCamStore +
                                   10 * p.lsqAlloc);
    EXPECT_DOUBLE_EQ(b.lsq(), b.lsqBloom + b.lsqCam);
}

TEST(EnergyModel, AppendixPerOpCostIs3000fJ)
{
    // The appendix prices the optimized LSQ at 3000 fJ per memory op;
    // our always-paid split (alloc + bloom) must add up to that.
    EnergyParams p;
    EXPECT_DOUBLE_EQ(p.lsqAlloc + p.lsqBloom, 3000.0);
}

TEST(EnergyModel, L1IncludesScratchpad)
{
    StatSet stats;
    stats.counter("l1.reads").inc(3);
    stats.counter("l1.writes").inc(2);
    stats.counter("scratchpad.reads").inc(4);
    EnergyParams p;
    EnergyModel model(p);
    EnergyBreakdown b = model.breakdown(stats);
    EXPECT_DOUBLE_EQ(b.l1, 3 * p.l1Read + 2 * p.l1Write +
                               4 * p.scratchpadAccess);
}

TEST(EnergyModel, FractionsSumToOne)
{
    StatSet stats;
    stats.counter(ev::kIntOps).inc(7);
    stats.counter(ev::kMdeMay).inc(3);
    stats.counter(ev::kLsqBloom).inc(2);
    stats.counter("l1.reads").inc(5);
    EnergyModel model;
    EnergyBreakdown b = model.breakdown(stats);
    double sum = b.frac(b.compute) + b.frac(b.mde) +
                 b.frac(b.lsqBloom) + b.frac(b.lsqCam) + b.frac(b.l1);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(EnergyModel, DescribeBreakdownMentionsCategories)
{
    StatSet stats;
    stats.counter(ev::kIntOps).inc(1);
    EnergyModel model;
    std::string s = describeBreakdown(model.breakdown(stats));
    EXPECT_NE(s.find("compute"), std::string::npos);
    EXPECT_NE(s.find("lsq"), std::string::npos);
    EXPECT_NE(s.find("nJ"), std::string::npos);
}

} // namespace
} // namespace nachos
