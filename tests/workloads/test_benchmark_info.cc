#include <gtest/gtest.h>

#include <set>

#include "workloads/benchmark_info.hh"

namespace nachos {
namespace {

TEST(BenchmarkInfo, SuiteHas27Workloads)
{
    EXPECT_EQ(benchmarkSuite().size(), 27u);
}

TEST(BenchmarkInfo, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &b : benchmarkSuite())
        EXPECT_TRUE(names.insert(b.shortName).second) << b.shortName;
}

TEST(BenchmarkInfo, FamilyFractionsSumToAtMostOne)
{
    for (const auto &b : benchmarkSuite()) {
        double sum = b.famNoFrac + b.famStage2Frac + b.famStage4Frac +
                     b.famOpaqueFrac;
        EXPECT_LE(sum, 1.0 + 1e-9) << b.shortName;
        if (b.memOps > 0) {
            EXPECT_GT(sum, 0.99) << b.shortName;
        }
    }
}

TEST(BenchmarkInfo, MostWorkloadsFullyResolvable)
{
    // §VIII-B reports 15 of 27 workloads with the compiler certain
    // about all dependencies; our reading of the per-stage efficacy
    // lists yields 17 fully-resolved workloads (documented as a
    // deviation in EXPERIMENTS.md). At minimum the paper's 15 must
    // resolve, and the 10 §VI slowdown/fan-in workloads must not.
    int resolved = 0;
    for (const auto &b : benchmarkSuite())
        resolved += b.expectResidualMay() ? 0 : 1;
    EXPECT_EQ(resolved, 17);
    EXPECT_GE(resolved, 15);
}

TEST(BenchmarkInfo, Table2HeadlineValues)
{
    const auto &equake = benchmarkByName("equake");
    EXPECT_EQ(equake.ops, 559u);
    EXPECT_EQ(equake.memOps, 215u);
    EXPECT_EQ(equake.mlp, 16u);

    const auto &bzip2 = benchmarkByName("bzip2");
    EXPECT_EQ(bzip2.mlp, 128u);
    EXPECT_EQ(bzip2.fanInClass, FanInClass::High);

    const auto &blacks = benchmarkByName("blackscholes");
    EXPECT_EQ(blacks.memOps, 0u);
}

TEST(BenchmarkInfo, BloomClassesMatchFig18Table)
{
    // Spot-check the verbatim bucket assignments from Figure 18.
    EXPECT_EQ(benchmarkByName("gzip").bloomClass, BloomClass::Zero);
    EXPECT_EQ(benchmarkByName("sjeng").bloomClass, BloomClass::Low);
    EXPECT_EQ(benchmarkByName("parser").bloomClass, BloomClass::Mid);
    EXPECT_EQ(benchmarkByName("fft2d").bloomClass, BloomClass::High);
    EXPECT_EQ(benchmarkByName("histogram").bloomClass,
              BloomClass::High);
    EXPECT_EQ(benchmarkByName("fluidanimate").bloomClass,
              BloomClass::Zero);
}

TEST(BenchmarkInfo, EnumNamesPrintable)
{
    EXPECT_STREQ(suiteName(Suite::Parsec), "PARSEC");
    EXPECT_STREQ(bloomClassName(BloomClass::High), "20+");
    EXPECT_STREQ(fanInClassName(FanInClass::High), "high");
}

TEST(BenchmarkInfoDeathTest, UnknownNameFatals)
{
    EXPECT_EXIT(benchmarkByName("nope"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

} // namespace
} // namespace nachos
