/**
 * Top-5-path coverage: the 135-region study (27 workloads x 5 paths)
 * relies on every scaled path variant being as sound and well-formed
 * as the hottest path.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "workloads/suite.hh"

namespace nachos {
namespace {

struct PathCase
{
    size_t benchmark;
    uint32_t path;
};

class PathSoundness
    : public ::testing::TestWithParam<std::tuple<size_t, uint32_t>>
{};

TEST_P(PathSoundness, ScaledPathsStaySound)
{
    const auto [bench_idx, path] = GetParam();
    const BenchmarkInfo &info = benchmarkSuite()[bench_idx];
    SynthesisOptions opts;
    opts.pathIndex = path;
    Region r = synthesizeRegion(info, opts);
    AliasAnalysisResult res = runAliasPipeline(r);
    EXPECT_EQ(countSoundnessViolations(r, res.matrix, 24), 0u)
        << info.shortName << " path " << path;
}

// Representative slice: one workload per family archetype, all paths.
INSTANTIATE_TEST_SUITE_P(
    Representative, PathSoundness,
    ::testing::Combine(::testing::Values(size_t{0},  // gzip
                                         size_t{3},  // equake
                                         size_t{6},  // bzip2
                                         size_t{14}, // lbm (3-D)
                                         size_t{23}, // sarback
                                         size_t{26}  // histogram
                                         ),
                       ::testing::Range(uint32_t{1}, uint32_t{5})));

TEST(PathScaling, SizesShrinkMonotonically)
{
    for (const char *name : {"equake", "povray", "histogram"}) {
        const BenchmarkInfo &info = benchmarkByName(name);
        size_t prev_ops = SIZE_MAX;
        for (uint32_t path = 0; path < 5; ++path) {
            SynthesisOptions opts;
            opts.pathIndex = path;
            Region r = synthesizeRegion(info, opts);
            EXPECT_LE(r.numOps(), prev_ops)
                << name << " path " << path;
            prev_ops = r.numOps();
        }
    }
}

TEST(PathScaling, FamilyCharacterSurvivesScaling)
{
    // Even the smallest path of a residual-MAY workload keeps MAYs,
    // and of a stage-4 workload still resolves fully.
    SynthesisOptions p4;
    p4.pathIndex = 4;
    {
        Region r = synthesizeRegion(benchmarkByName("bzip2"), p4);
        AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_GT(res.final().all.may, 0u);
    }
    {
        Region r = synthesizeRegion(benchmarkByName("equake"), p4);
        AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_EQ(res.final().all.may, 0u);
        EXPECT_GT(res.afterStage3.all.may, 0u); // stage 4 did the work
    }
}

TEST(PathScaling, DistinctPathsAreDistinctRegions)
{
    const BenchmarkInfo &info = benchmarkByName("parser");
    SynthesisOptions p0, p1;
    p1.pathIndex = 1;
    Region a = synthesizeRegion(info, p0);
    Region b = synthesizeRegion(info, p1);
    EXPECT_NE(a.numOps(), b.numOps());
}

} // namespace
} // namespace nachos
