/**
 * Descriptor fuzzing: random-but-valid BenchmarkInfo descriptors (any
 * family mix, fan-in class, dependence counts, MLP, flags) must
 * synthesize structurally valid regions whose alias labels are sound
 * and whose three backend executions match the golden program-order
 * reference. This guards the synthesizer against corner cases no
 * hand-written descriptor exercises.
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "harness/golden.hh"
#include "mde/inserter.hh"
#include "support/random.hh"
#include "workloads/synthesizer.hh"

namespace nachos {
namespace {

BenchmarkInfo
randomDescriptor(uint64_t seed)
{
    Rng rng(seed * 31 + 17);
    BenchmarkInfo b;
    b.name = "fuzz" + std::to_string(seed);
    b.shortName = b.name;
    b.ops = static_cast<uint32_t>(rng.range(8, 260));
    b.memOps = static_cast<uint32_t>(
        rng.range(0, std::min<int64_t>(b.ops / 2, 80)));
    b.mlp = static_cast<uint32_t>(rng.range(1, 32));
    if (b.memOps >= 6) {
        b.stStDeps = static_cast<uint32_t>(rng.range(0, 6));
        b.stLdDeps = static_cast<uint32_t>(rng.range(0, 6));
        b.ldStDeps = static_cast<uint32_t>(rng.range(0, 6));
    }
    b.localPct = rng.uniform() * 40;
    b.storeFraction = 0.1 + rng.uniform() * 0.5;
    b.fpFraction = rng.uniform() * 0.6;
    b.criticalPathFrac = 0.05 + rng.uniform() * 0.3;

    // Random family split.
    double f2 = rng.uniform(), f4 = rng.uniform(), fo = rng.uniform();
    double fn = rng.uniform() + 0.2;
    double total = f2 + f4 + fo + fn;
    b.famStage2Frac = f2 / total;
    b.famStage4Frac = f4 / total;
    b.famOpaqueFrac = fo / total;
    b.famNoFrac = fn / total;

    b.l1HitTarget = 0.6 + rng.uniform() * 0.4;
    b.fanInClass = static_cast<FanInClass>(rng.below(4));
    b.bloomClass = static_cast<BloomClass>(rng.below(4));
    b.chainedLoads = rng.chance(0.3);
    b.lattice3d = rng.chance(0.3);
    b.invocations = 16;
    b.parentContextOps = static_cast<uint32_t>(rng.range(0, 12));
    return b;
}

class DescriptorFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DescriptorFuzz, SynthesisSoundAndGoldenEquivalent)
{
    BenchmarkInfo info = randomDescriptor(GetParam());
    SynthesisOptions opts;
    opts.pathIndex = static_cast<uint32_t>(GetParam() % 5);
    Region r = synthesizeRegion(info, opts);

    // Structural sanity.
    EXPECT_GE(r.numOps(), 4u);
    if (info.memOps == 0) {
        EXPECT_EQ(r.numMemOps(), 0u);
    }

    // Label soundness at every stage configuration.
    for (bool s2 : {false, true}) {
        PipelineConfig cfg;
        cfg.stage2 = s2;
        AliasAnalysisResult res = runAliasPipeline(r, cfg);
        EXPECT_EQ(countSoundnessViolations(r, res.matrix, 20), 0u)
            << info.name << " stage2=" << s2;
    }

    // Golden equivalence across all backends.
    GoldenResult golden = goldenExecute(r, 5);
    AliasAnalysisResult res = runAliasPipeline(r);
    MdeSet mdes = insertMdes(r, res.matrix);
    SimConfig cfg;
    cfg.invocations = 5;
    for (BackendKind kind : {BackendKind::OptLsq, BackendKind::NachosSw,
                             BackendKind::Nachos}) {
        SimResult sim = simulate(r, mdes, kind, cfg);
        EXPECT_EQ(sim.loadValueDigest, golden.loadValueDigest)
            << info.name << " under " << backendName(kind);
        EXPECT_EQ(sim.memImage, golden.memImage)
            << info.name << " under " << backendName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptorFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

} // namespace
} // namespace nachos
