#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "workloads/suite.hh"
#include "workloads/synthesizer.hh"

namespace nachos {
namespace {

TEST(Synthesizer, MemOpCountsNearDescriptor)
{
    for (const auto &info : benchmarkSuite()) {
        Region r = synthesizeRegion(info);
        const double mem = static_cast<double>(r.numMemOps());
        if (info.memOps == 0) {
            EXPECT_EQ(r.numMemOps(), 0u) << info.shortName;
        } else {
            EXPECT_NEAR(mem, info.memOps,
                        std::max(2.0, info.memOps * 0.1))
                << info.shortName;
        }
    }
}

TEST(Synthesizer, TotalOpCountsNearDescriptor)
{
    for (const auto &info : benchmarkSuite()) {
        Region r = synthesizeRegion(info);
        EXPECT_GE(r.numOps() + 2, info.ops) << info.shortName;
        // Allow overhead (delay lines, liveins) of up to 35%.
        EXPECT_LE(r.numOps(), info.ops * 1.35 + 16) << info.shortName;
    }
}

TEST(Synthesizer, ScratchpadShareTracksLocalPct)
{
    const auto &crafty = benchmarkByName("crafty"); // 40% local
    Region r = synthesizeRegion(crafty);
    EXPECT_GT(r.numScratchpadOps(), 0u);
    double promoted = static_cast<double>(r.numScratchpadOps());
    double share =
        promoted / (promoted + static_cast<double>(r.numMemOps()));
    EXPECT_NEAR(share, 0.40, 0.12);

    const auto &histogram = benchmarkByName("histogram"); // 0% local
    EXPECT_EQ(synthesizeRegion(histogram).numScratchpadOps(), 0u);
}

TEST(Synthesizer, DeterministicForSameSeed)
{
    const auto &info = benchmarkByName("parser");
    Region a = synthesizeRegion(info);
    Region b = synthesizeRegion(info);
    ASSERT_EQ(a.numOps(), b.numOps());
    for (OpId i = 0; i < a.numOps(); ++i) {
        EXPECT_EQ(a.op(i).kind, b.op(i).kind) << i;
        EXPECT_EQ(a.op(i).operands, b.op(i).operands) << i;
    }
}

TEST(Synthesizer, PathScalesShrinkRegions)
{
    const auto &info = benchmarkByName("equake");
    SynthesisOptions p0, p4;
    p4.pathIndex = 4;
    Region r0 = synthesizeRegion(info, p0);
    Region r4 = synthesizeRegion(info, p4);
    EXPECT_LT(r4.numOps(), r0.numOps());
    EXPECT_LT(r4.numMemOps(), r0.numMemOps());
    EXPECT_NEAR(static_cast<double>(r4.numMemOps()),
                0.45 * static_cast<double>(r0.numMemOps()),
                0.15 * static_cast<double>(r0.numMemOps()));
}

/** Alias-pipeline soundness across the full suite (hottest paths). */
class SuiteSoundness
    : public ::testing::TestWithParam<size_t>
{};

TEST_P(SuiteSoundness, NoLabelNeverOverlaps)
{
    const auto &info = benchmarkSuite()[GetParam()];
    Region r = synthesizeRegion(info);
    AliasAnalysisResult res = runAliasPipeline(r);
    EXPECT_EQ(countSoundnessViolations(r, res.matrix, 40), 0u)
        << info.shortName;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteSoundness,
                         ::testing::Range(size_t{0}, size_t{27}));

TEST(Synthesizer, Stage1CompleteWorkloadsHaveNoResidualMay)
{
    for (const char *name :
         {"gzip", "mcf181", "crafty", "mcf429", "sjeng"}) {
        Region r = synthesizeRegion(benchmarkByName(name));
        AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_EQ(res.final().all.may, 0u) << name;
        // Even Stage 1 alone suffices for these workloads.
        EXPECT_EQ(res.afterStage1.all.may, 0u) << name;
    }
}

TEST(Synthesizer, Stage4WorkloadsNeedStage4)
{
    for (const char *name :
         {"equake", "lbm", "namd", "bodytrack", "dwt53"}) {
        Region r = synthesizeRegion(benchmarkByName(name));
        AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_GT(res.afterStage3.all.may, 0u) << name;
        EXPECT_EQ(res.afterStage4.all.may, 0u) << name;
    }
}

TEST(Synthesizer, Stage2WorkloadsNeedStage2)
{
    for (const char *name : {"gcc", "fluidanimate", "sarback"}) {
        Region r = synthesizeRegion(benchmarkByName(name));
        AliasAnalysisResult full = runAliasPipeline(r);
        // Stage 2 does the conversion (Figure 7): MAYs drop between
        // the stage-1 and stage-2 snapshots.
        EXPECT_GT(full.afterStage1.all.may, 0u) << name;
        EXPECT_LT(full.afterStage2.all.may, full.afterStage1.all.may)
            << name;
        EXPECT_EQ(full.final().all.may, 0u) << name;

        // The baseline compiler (stages 1+3, Figure 12) cannot
        // resolve these workloads.
        AliasAnalysisResult baseline = runAliasPipeline(
            r, PipelineConfig::baselineCompiler());
        EXPECT_GT(baseline.final().all.may, 0u) << name;
    }
}

TEST(Synthesizer, ResidualMayWorkloadsKeepMay)
{
    for (const char *name :
         {"bzip2", "povray", "fft2d", "art", "soplex"}) {
        Region r = synthesizeRegion(benchmarkByName(name));
        AliasAnalysisResult res = runAliasPipeline(r);
        EXPECT_GT(res.final().all.may, 0u) << name;
    }
}

TEST(Synthesizer, ScopeStudyAddsMayRelations)
{
    const auto &bzip2 = benchmarkByName("bzip2");
    ScopeStudyRegions study = synthesizeScopeStudy(bzip2);
    AliasAnalysisResult base = runAliasPipeline(study.regionOnly);
    AliasAnalysisResult wide = runAliasPipeline(study.withParent);
    EXPECT_GT(wide.afterStage1.all.may, base.afterStage1.all.may);
}

TEST(Synthesizer, ScopeStudyNoGrowthWithoutParentOps)
{
    const auto &gzip = benchmarkByName("gzip");
    ASSERT_EQ(gzip.parentContextOps, 0u);
    ScopeStudyRegions study = synthesizeScopeStudy(gzip);
    AliasAnalysisResult base = runAliasPipeline(study.regionOnly);
    AliasAnalysisResult wide = runAliasPipeline(study.withParent);
    EXPECT_EQ(wide.afterStage1.all.may, base.afterStage1.all.may);
}

TEST(Suite, FullSuiteHas135Regions)
{
    auto suite = buildFullSuite();
    EXPECT_EQ(suite.size(), 135u);
    // Path indices cycle 0..4 per batch of 27.
    EXPECT_EQ(suite[0].pathIndex, 0u);
    EXPECT_EQ(suite[134].pathIndex, 4u);
}

} // namespace
} // namespace nachos
