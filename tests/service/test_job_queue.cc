#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "service/job_queue.hh"

namespace nachos {
namespace {

std::shared_ptr<Job>
makeJob(uint64_t id)
{
    auto job = std::make_shared<Job>();
    job->requestId = id;
    return job;
}

TEST(JobQueue, FifoOrder)
{
    JobQueue q(4);
    EXPECT_TRUE(q.tryPush(makeJob(1)));
    EXPECT_TRUE(q.tryPush(makeJob(2)));
    EXPECT_TRUE(q.tryPush(makeJob(3)));
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(q.pop()->requestId, 1u);
    EXPECT_EQ(q.pop()->requestId, 2u);
    EXPECT_EQ(q.pop()->requestId, 3u);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueue, CapacityBoundsAdmission)
{
    JobQueue q(2);
    EXPECT_TRUE(q.tryPush(makeJob(1)));
    EXPECT_TRUE(q.tryPush(makeJob(2)));
    EXPECT_FALSE(q.tryPush(makeJob(3))); // full -> queue_full upstream
    q.pop();
    EXPECT_TRUE(q.tryPush(makeJob(4))); // slot freed
}

TEST(JobQueue, CloseRejectsPushesAndDrainsPoppers)
{
    JobQueue q(4);
    ASSERT_TRUE(q.tryPush(makeJob(1)));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.tryPush(makeJob(2)));
    // Already-admitted work still drains...
    ASSERT_NE(q.pop(), nullptr);
    // ...then poppers get the end-of-stream marker instead of blocking.
    EXPECT_EQ(q.pop(), nullptr);
    EXPECT_EQ(q.pop(), nullptr);
}

TEST(JobQueue, CloseWakesBlockedPopper)
{
    JobQueue q(4);
    std::atomic<bool> gotNull{false};
    std::thread popper([&] {
        gotNull = q.pop() == nullptr;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    popper.join();
    EXPECT_TRUE(gotNull);
}

TEST(JobQueue, CancelOnlyWhileQueued)
{
    JobQueue q(4);
    auto job = makeJob(1);
    ASSERT_TRUE(q.tryPush(job));
    EXPECT_TRUE(q.cancel(job));
    EXPECT_EQ(job->state.load(), JobState::Cancelled);
    // Cancelling twice (or after the job left the queue) fails.
    EXPECT_FALSE(q.cancel(job));

    auto popped = makeJob(2);
    ASSERT_TRUE(q.tryPush(popped));
    // The cancelled corpse is skipped; pop returns the live job.
    std::shared_ptr<Job> next = q.pop();
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->requestId, 2u);
    EXPECT_FALSE(q.cancel(popped));
}

TEST(JobQueue, PopSkipsTimedOutCorpses)
{
    JobQueue q(4);
    auto dead = makeJob(1);
    auto live = makeJob(2);
    ASSERT_TRUE(q.tryPush(dead));
    ASSERT_TRUE(q.tryPush(live));
    // Watchdog expired the queued job before any worker popped it.
    ASSERT_TRUE(dead->tryTransition(JobState::Queued,
                                    JobState::TimedOut));
    EXPECT_EQ(q.pop()->requestId, 2u);
}

TEST(Job, TransitionIsExactlyOnce)
{
    auto job = makeJob(1);
    // Worker, watchdog, and cancel race; exactly one wins.
    std::atomic<int> winners{0};
    std::vector<std::thread> racers;
    for (const JobState to :
         {JobState::Running, JobState::TimedOut, JobState::Cancelled}) {
        racers.emplace_back([&, to] {
            if (job->tryTransition(JobState::Queued, to))
                ++winners;
        });
    }
    for (std::thread &t : racers)
        t.join();
    EXPECT_EQ(winners.load(), 1);
}

TEST(JobQueue, ConcurrentProducersConsumers)
{
    JobQueue q(1024);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 200;
    std::atomic<int> popped{0};
    std::atomic<uint64_t> idSum{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c) {
        consumers.emplace_back([&] {
            while (std::shared_ptr<Job> job = q.pop()) {
                idSum += job->requestId;
                ++popped;
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const uint64_t id =
                    static_cast<uint64_t>(p) * kPerProducer + i + 1;
                while (!q.tryPush(makeJob(id)))
                    std::this_thread::yield();
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    // Close only after every producer is done; consumers then drain.
    q.close();
    for (std::thread &t : consumers)
        t.join();

    constexpr uint64_t kTotal = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), static_cast<int>(kTotal));
    EXPECT_EQ(idSum.load(), kTotal * (kTotal + 1) / 2);
}

} // namespace
} // namespace nachos
