#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "service/job_queue.hh"
#include "workloads/benchmark_info.hh"

namespace nachos {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<Job>
makeJob(uint64_t id, AdmitClass klass = AdmitClass::Interactive,
        const char *workload = "164.gzip", uint64_t seed = 1)
{
    auto job = std::make_shared<Job>();
    job->requestId = id;
    job->spec.info = findBenchmark(workload);
    job->spec.request.seed = seed;
    job->spec.klass = klass;
    return job;
}

/** claim() with try-only semantics; returns the single claimed job. */
std::shared_ptr<Job>
claimOne(JobQueue &q, uint32_t maxLanes = 1)
{
    std::vector<std::shared_ptr<Job>> out;
    return q.claim(out, maxLanes, 0ms) ? out.front() : nullptr;
}

TEST(JobQueue, FifoOrderWithinAClass)
{
    JobQueue q(4, 4);
    EXPECT_TRUE(q.tryPush(makeJob(1)));
    EXPECT_TRUE(q.tryPush(makeJob(2)));
    EXPECT_TRUE(q.tryPush(makeJob(3)));
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(claimOne(q)->requestId, 1u);
    EXPECT_EQ(claimOne(q)->requestId, 2u);
    EXPECT_EQ(claimOne(q)->requestId, 3u);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueue, ClaimMakesTheJobRunning)
{
    JobQueue q(4, 4);
    auto job = makeJob(1);
    ASSERT_TRUE(q.tryPush(job));
    EXPECT_EQ(job->state.load(), JobState::Queued);
    ASSERT_EQ(claimOne(q), job);
    // The Queued -> Running transition happened inside the ring lock;
    // there is no popped-but-still-Queued window for the watchdog.
    EXPECT_EQ(job->state.load(), JobState::Running);
}

TEST(JobQueue, InteractiveHasPriorityOverBulk)
{
    JobQueue q(4, 4);
    ASSERT_TRUE(q.tryPush(makeJob(1, AdmitClass::Bulk)));
    ASSERT_TRUE(q.tryPush(makeJob(2, AdmitClass::Interactive)));
    EXPECT_EQ(q.depth(AdmitClass::Interactive), 1u);
    EXPECT_EQ(q.depth(AdmitClass::Bulk), 1u);
    EXPECT_EQ(claimOne(q)->requestId, 2u); // interactive first
    EXPECT_EQ(claimOne(q)->requestId, 1u);
}

TEST(JobQueue, PerClassCapacityBoundsAdmission)
{
    JobQueue q(1, 2);
    EXPECT_TRUE(q.tryPush(makeJob(1)));
    EXPECT_FALSE(q.tryPush(makeJob(2))); // interactive ring full
    // The bulk ring is bounded independently.
    EXPECT_TRUE(q.tryPush(makeJob(3, AdmitClass::Bulk)));
    EXPECT_TRUE(q.tryPush(makeJob(4, AdmitClass::Bulk)));
    EXPECT_FALSE(q.tryPush(makeJob(5, AdmitClass::Bulk)));
    claimOne(q);
    EXPECT_TRUE(q.tryPush(makeJob(6))); // slot freed
}

TEST(JobQueue, OnAdmitRunsOnlyOnAdmission)
{
    JobQueue q(1, 1);
    int admitted = 0;
    auto bump = [&] { ++admitted; };
    EXPECT_TRUE(q.tryPush(makeJob(1), bump));
    EXPECT_FALSE(q.tryPush(makeJob(2), bump)); // full: no callback
    EXPECT_EQ(admitted, 1);
}

TEST(JobQueue, InteractiveJobsNeverCoalesce)
{
    JobQueue q(8, 8);
    ASSERT_TRUE(q.tryPush(makeJob(1, AdmitClass::Interactive)));
    ASSERT_TRUE(q.tryPush(makeJob(2, AdmitClass::Interactive)));
    std::vector<std::shared_ptr<Job>> out;
    EXPECT_EQ(q.claim(out, 64, 0ms), 1u);
    EXPECT_EQ(out.front()->requestId, 1u);
}

TEST(JobQueue, BulkJobsWithSameRegionWorkCoalesce)
{
    JobQueue q(8, 8);
    for (uint64_t id = 1; id <= 3; ++id)
        ASSERT_TRUE(q.tryPush(makeJob(id, AdmitClass::Bulk)));
    std::vector<std::shared_ptr<Job>> out;
    ASSERT_EQ(q.claim(out, 64, 0ms), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(out[i]->requestId, i + 1);
        EXPECT_EQ(out[i]->state.load(), JobState::Running);
    }
    EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueue, MismatchedBulkJobsKeepTheirTurn)
{
    JobQueue q(8, 8);
    // Jobs 1 and 3 agree on region work; job 2 (different seed) does
    // not, and must neither join the group nor lose its place.
    ASSERT_TRUE(q.tryPush(makeJob(1, AdmitClass::Bulk, "164.gzip", 1)));
    ASSERT_TRUE(q.tryPush(makeJob(2, AdmitClass::Bulk, "164.gzip", 9)));
    ASSERT_TRUE(q.tryPush(makeJob(3, AdmitClass::Bulk, "164.gzip", 1)));
    std::vector<std::shared_ptr<Job>> out;
    ASSERT_EQ(q.claim(out, 64, 0ms), 2u);
    EXPECT_EQ(out[0]->requestId, 1u);
    EXPECT_EQ(out[1]->requestId, 3u);
    ASSERT_EQ(q.claim(out, 64, 0ms), 1u);
    EXPECT_EQ(out[0]->requestId, 2u);
}

TEST(JobQueue, DivergentMachineConfigsDoNotCoalesce)
{
    JobQueue q(8, 8);
    // Jobs 1 and 3 want the same machine; job 2 shares their region
    // work but overrides the LSQ geometry, so batching it into their
    // group would simulate it on the wrong hardware.
    auto small = makeJob(2, AdmitClass::Bulk);
    small->spec.request.machine.lsqBanks = 1;
    auto twin = makeJob(3, AdmitClass::Bulk);
    twin->spec.request.machine = MachineOverrides{};
    ASSERT_TRUE(q.tryPush(makeJob(1, AdmitClass::Bulk)));
    ASSERT_TRUE(q.tryPush(small));
    ASSERT_TRUE(q.tryPush(twin));
    std::vector<std::shared_ptr<Job>> out;
    ASSERT_EQ(q.claim(out, 64, 0ms), 2u);
    EXPECT_EQ(out[0]->requestId, 1u);
    EXPECT_EQ(out[1]->requestId, 3u);
    ASSERT_EQ(q.claim(out, 64, 0ms), 1u);
    EXPECT_EQ(out[0]->requestId, 2u);
}

TEST(JobQueue, MatchingMachineConfigsStillCoalesce)
{
    JobQueue q(8, 8);
    // Identical non-default machines are homogeneous: one group.
    for (uint64_t id = 1; id <= 3; ++id) {
        auto job = makeJob(id, AdmitClass::Bulk);
        job->spec.request.machine.dramLatency = 400;
        job->spec.request.machine.lsqBanks = 2;
        ASSERT_TRUE(q.tryPush(job));
    }
    std::vector<std::shared_ptr<Job>> out;
    ASSERT_EQ(q.claim(out, 64, 0ms), 3u);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueue, LaneBudgetBoundsTheGroup)
{
    JobQueue q(8, 8);
    // One backend lane per job (the default request costs three).
    for (uint64_t id = 1; id <= 4; ++id) {
        auto job = makeJob(id, AdmitClass::Bulk);
        job->spec.request.runLsq = false;
        job->spec.request.runSw = false;
        job->spec.request.runNachos = true;
        ASSERT_TRUE(q.tryPush(job));
    }
    std::vector<std::shared_ptr<Job>> out;
    ASSERT_EQ(q.claim(out, 2, 0ms), 2u); // budget 2 lanes -> 2 jobs
    ASSERT_EQ(q.claim(out, 2, 0ms), 2u);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueue, SleepingBulkJobsDoNotCoalesce)
{
    JobQueue q(8, 8);
    auto sleeper = makeJob(1, AdmitClass::Bulk);
    sleeper->spec.sleepMillis = 5;
    ASSERT_TRUE(q.tryPush(sleeper));
    ASSERT_TRUE(q.tryPush(makeJob(2, AdmitClass::Bulk)));
    std::vector<std::shared_ptr<Job>> out;
    // The sleeper leads but is not coalescible -> singleton group.
    ASSERT_EQ(q.claim(out, 64, 0ms), 1u);
    EXPECT_EQ(out.front()->requestId, 1u);
}

TEST(JobQueue, CloseRejectsPushesAndDrainsClaimers)
{
    JobQueue q(4, 4);
    ASSERT_TRUE(q.tryPush(makeJob(1)));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.tryPush(makeJob(2)));
    // Already-admitted work still drains...
    EXPECT_NE(claimOne(q), nullptr);
    // ...then claimers get 0 instead of blocking.
    std::vector<std::shared_ptr<Job>> out;
    EXPECT_EQ(q.claim(out, 1, 1000ms), 0u);
}

TEST(JobQueue, CloseWakesBlockedClaimer)
{
    JobQueue q(4, 4);
    std::atomic<bool> gotZero{false};
    std::thread claimer([&] {
        std::vector<std::shared_ptr<Job>> out;
        gotZero = q.claim(out, 1, 30000ms) == 0;
    });
    std::this_thread::sleep_for(20ms);
    q.close();
    claimer.join();
    EXPECT_TRUE(gotZero);
}

TEST(JobQueue, CancelOnlyWhileQueued)
{
    JobQueue q(4, 4);
    auto job = makeJob(1);
    ASSERT_TRUE(q.tryPush(job));
    EXPECT_TRUE(q.cancel(job));
    EXPECT_EQ(job->state.load(), JobState::Cancelled);
    // Cancelling twice (or after the job left the queue) fails.
    EXPECT_FALSE(q.cancel(job));

    auto claimed = makeJob(2);
    ASSERT_TRUE(q.tryPush(claimed));
    // The cancelled corpse is skipped; claim returns the live job.
    std::shared_ptr<Job> next = claimOne(q);
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->requestId, 2u);
    EXPECT_FALSE(q.cancel(claimed));
}

TEST(JobQueue, ClaimSkipsTimedOutCorpses)
{
    JobQueue q(4, 4);
    auto dead = makeJob(1);
    auto live = makeJob(2);
    ASSERT_TRUE(q.tryPush(dead));
    ASSERT_TRUE(q.tryPush(live));
    // Watchdog expired the queued job before any worker claimed it.
    ASSERT_TRUE(dead->tryTransition(JobState::Queued,
                                    JobState::TimedOut));
    EXPECT_EQ(claimOne(q)->requestId, 2u);
}

TEST(Job, TransitionIsExactlyOnce)
{
    auto job = makeJob(1);
    // Worker, watchdog, and cancel race; exactly one wins.
    std::atomic<int> winners{0};
    std::vector<std::thread> racers;
    for (const JobState to :
         {JobState::Running, JobState::TimedOut, JobState::Cancelled}) {
        racers.emplace_back([&, to] {
            if (job->tryTransition(JobState::Queued, to))
                ++winners;
        });
    }
    for (std::thread &t : racers)
        t.join();
    EXPECT_EQ(winners.load(), 1);
}

/**
 * Satellite 1 regression: cancel, the watchdog's timeout, and worker
 * claims race on the same queue; every job must end with exactly one
 * owner (claimed, cancelled, or timed out — never two of them, never
 * zero). Under the old pop-then-transition scheme, the watchdog could
 * time out a job a worker had already popped, producing two owners.
 */
TEST(JobQueue, ClaimCancelTimeoutStress)
{
    constexpr int kJobs = 400;
    JobQueue q(kJobs, kJobs);
    std::vector<std::shared_ptr<Job>> jobs;
    jobs.reserve(kJobs);
    for (uint64_t id = 1; id <= kJobs; ++id) {
        // Half interactive, half coalescible bulk, so both claim
        // paths (singleton and group) participate in the race.
        auto job = makeJob(id, id % 2 ? AdmitClass::Interactive
                                      : AdmitClass::Bulk);
        jobs.push_back(job);
        ASSERT_TRUE(q.tryPush(job));
    }

    std::atomic<int> claimed{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) { // claiming workers
        threads.emplace_back([&] {
            std::vector<std::shared_ptr<Job>> out;
            while (q.claim(out, 8, 20ms))
                claimed += static_cast<int>(out.size());
        });
    }
    std::atomic<int> cancelled{0};
    threads.emplace_back([&] { // cancel requests, front to back
        for (const auto &job : jobs)
            if (q.cancel(job))
                ++cancelled;
    });
    std::atomic<int> timedOut{0};
    threads.emplace_back([&] { // watchdog expiring queued jobs
        for (size_t i = jobs.size(); i-- > 0;)
            if (jobs[i]->tryTransition(JobState::Queued,
                                       JobState::TimedOut))
                ++timedOut;
    });
    std::this_thread::sleep_for(50ms);
    q.close();
    for (std::thread &t : threads)
        t.join();

    // Exactly one owner per job, and the tallies add up.
    EXPECT_EQ(claimed + cancelled + timedOut, kJobs);
    int running = 0, dead = 0;
    for (const auto &job : jobs) {
        switch (job->state.load()) {
        case JobState::Running:
            ++running;
            break;
        case JobState::Cancelled:
        case JobState::TimedOut:
            ++dead;
            break;
        default:
            ADD_FAILURE() << "job " << job->requestId
                          << " ended Queued/Done";
        }
    }
    EXPECT_EQ(running, claimed.load());
    EXPECT_EQ(dead, cancelled.load() + timedOut.load());
    EXPECT_EQ(q.depth(), 0u);
}

TEST(JobQueue, ConcurrentProducersConsumers)
{
    JobQueue q(1024, 1024);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 200;
    std::atomic<int> consumed{0};
    std::atomic<uint64_t> idSum{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c) {
        consumers.emplace_back([&] {
            std::vector<std::shared_ptr<Job>> out;
            while (q.claim(out, 4, 50ms)) {
                for (const auto &job : out) {
                    idSum += job->requestId;
                    ++consumed;
                }
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const uint64_t id =
                    static_cast<uint64_t>(p) * kPerProducer + i + 1;
                // Mixed classes exercise both rings.
                while (!q.tryPush(makeJob(id, id % 3
                                                  ? AdmitClass::Bulk
                                                  : AdmitClass::
                                                        Interactive)))
                    std::this_thread::yield();
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    // Close only after every producer is done; consumers then drain.
    q.close();
    for (std::thread &t : consumers)
        t.join();

    constexpr uint64_t kTotal = kProducers * kPerProducer;
    EXPECT_EQ(consumed.load(), static_cast<int>(kTotal));
    EXPECT_EQ(idSum.load(), kTotal * (kTotal + 1) / 2);
}

} // namespace
} // namespace nachos
