/**
 * End-to-end daemon tests over a real Unix-domain socket: golden
 * equivalence with the direct Runner, 16-way concurrency, malformed
 * input, backpressure, timeouts, cancellation, and graceful drain.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/run_json.hh"
#include "harness/runner.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "support/json.hh"

namespace nachos {
namespace {

/** Optional run-payload fields beyond the workload name. */
struct RunOpts
{
    uint64_t seed = 0;
    uint64_t invocations = 0;
    std::vector<std::string> backends;
    uint64_t timeoutMillis = 0;
    uint64_t sleepMillis = 0;
    const char *klass = nullptr; // "interactive" | "bulk"
};

JsonValue
runPayload(const std::string &workload, const RunOpts &opts)
{
    JsonValue run = JsonValue::makeObject();
    run.set("workload", workload);
    if (opts.seed)
        run.set("seed", opts.seed);
    if (opts.invocations)
        run.set("invocations", opts.invocations);
    if (!opts.backends.empty()) {
        JsonValue backends = JsonValue::makeArray();
        for (const std::string &b : opts.backends)
            backends.push(b);
        run.set("backends", std::move(backends));
    }
    if (opts.timeoutMillis)
        run.set("timeoutMillis", opts.timeoutMillis);
    if (opts.sleepMillis)
        run.set("sleepMillis", opts.sleepMillis);
    if (opts.klass)
        run.set("class", opts.klass);
    return run;
}

JsonValue
runRequest(uint64_t id, const std::string &workload,
           const RunOpts &opts = {})
{
    JsonValue req = requestEnvelope(id, "run");
    req.set("run", runPayload(workload, opts));
    return req;
}

/**
 * What the daemon must answer for this payload, computed through the
 * identical decode + runWorkload + encode path the daemon uses.
 */
std::string
directOutcomeJson(const std::string &workload, const RunOpts &opts)
{
    JobSpec spec;
    CodecError err;
    EXPECT_TRUE(decodeRunRequest(runPayload(workload, opts), spec, err))
        << err.code << ": " << err.message;
    const RunOutcome outcome = runWorkload(*spec.info, spec.request);
    return dumpJson(encodeRunOutcome(*spec.info, spec.request, outcome));
}

const char *
responseType(const JsonValue &response)
{
    const JsonValue *type = response.find("type");
    return type && type->isString() ? type->str().c_str() : "?";
}

std::string
errorCode(const JsonValue &response)
{
    const JsonValue *code = response.find("code");
    return code && code->isString() ? code->str() : "";
}

class DaemonTest : public ::testing::Test
{
  protected:
    void
    startWith(DaemonConfig config)
    {
        static std::atomic<int> counter{0};
        path_ = "/tmp/nachosd-test-" + std::to_string(::getpid()) +
                "-" + std::to_string(counter++) + ".sock";
        config.socketPath = path_;
        daemon_ = std::make_unique<Daemon>(config);
        std::string error;
        ASSERT_TRUE(daemon_->start(&error)) << error;
    }

    void
    start(unsigned workers = 2, size_t queueCapacity = 64,
          uint64_t defaultTimeoutMillis = 0)
    {
        DaemonConfig config;
        config.workers = workers;
        config.queueCapacity = queueCapacity;
        config.defaultTimeoutMillis = defaultTimeoutMillis;
        startWith(config);
    }

    void
    TearDown() override
    {
        daemon_.reset(); // destructor drains
        ::unlink(path_.c_str());
    }

    std::unique_ptr<ServiceClient>
    connect()
    {
        std::string error;
        auto client = ServiceClient::connectUnix(path_, &error);
        EXPECT_NE(client, nullptr) << error;
        return client;
    }

    uint64_t
    counterValue(const char *name)
    {
        const JsonValue snap = daemon_->metricsSnapshot();
        const JsonValue *counters = snap.find("counters");
        const JsonValue *v = counters ? counters->find(name) : nullptr;
        return v && v->isU64() ? v->asU64() : 0;
    }

    /** Spin (with a 30 s cap) until the condition holds. */
    void
    waitUntil(const std::function<bool()> &done, const char *what)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        while (!done()) {
            ASSERT_LT(std::chrono::steady_clock::now(), deadline)
                << "timed out waiting for " << what;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }

    std::string path_;
    std::unique_ptr<Daemon> daemon_;
};

TEST_F(DaemonTest, PingPong)
{
    start();
    auto client = connect();
    ASSERT_NE(client, nullptr);
    std::optional<JsonValue> response =
        client->call(requestEnvelope(1, "ping"));
    ASSERT_TRUE(response.has_value());
    EXPECT_STREQ(responseType(*response), "pong");
    EXPECT_EQ(response->find("id")->asU64(), 1u);
}

// Satellite (a): a job through nachosd yields byte-identical result
// JSON to a direct Runner call, for all three backends.
TEST_F(DaemonTest, GoldenEquivalenceWithDirectRunner)
{
    start();
    auto client = connect();
    ASSERT_NE(client, nullptr);

    struct Case
    {
        const char *workload;
        RunOpts opts;
    };
    std::vector<Case> cases;
    // All three backends together on a workload with real alias pairs.
    RunOpts art;
    art.seed = 3;
    art.invocations = 3;
    cases.push_back({"179.art", art});
    // Each backend alone.
    cases.push_back(
        {"164.gzip", {.invocations = 2, .backends = {"lsq"}}});
    cases.push_back(
        {"164.gzip", {.invocations = 2, .backends = {"sw"}}});
    cases.push_back(
        {"164.gzip", {.invocations = 2, .backends = {"nachos"}}});

    uint64_t id = 1;
    for (const Case &c : cases) {
        std::optional<JsonValue> response =
            client->call(runRequest(id, c.workload, c.opts));
        ASSERT_TRUE(response.has_value()) << c.workload;
        ASSERT_STREQ(responseType(*response), "result")
            << dumpJson(*response);
        EXPECT_EQ(response->find("id")->asU64(), id);
        const JsonValue *outcome = response->find("outcome");
        ASSERT_NE(outcome, nullptr);
        EXPECT_EQ(dumpJson(*outcome),
                  directOutcomeJson(c.workload, c.opts))
            << c.workload << " (case " << id << ")";
        ++id;
    }
}

// Satellite (b): >= 16 simultaneous connections, each with its own
// job; all complete with per-job-correct results and the final
// metrics snapshot adds up.
TEST_F(DaemonTest, SixteenConcurrentConnections)
{
    constexpr int kClients = 16;
    start();

    std::vector<std::string> got(kClients);
    std::vector<std::string> want(kClients);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            const RunOpts opts{.seed = static_cast<uint64_t>(i + 1),
                               .invocations = 2,
                               .backends = {"nachos"}};
            std::string error;
            auto client = ServiceClient::connectUnix(path_, &error);
            if (!client) {
                ++failures;
                return;
            }
            const uint64_t id = static_cast<uint64_t>(i + 1);
            std::optional<JsonValue> response =
                client->call(runRequest(id, "164.gzip", opts));
            if (!response ||
                std::string(responseType(*response)) != "result" ||
                response->find("id")->asU64() != id) {
                ++failures;
                return;
            }
            got[static_cast<size_t>(i)] =
                dumpJson(*response->find("outcome"));
            want[static_cast<size_t>(i)] =
                directOutcomeJson("164.gzip", opts);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    for (int i = 0; i < kClients; ++i) {
        ASSERT_FALSE(got[static_cast<size_t>(i)].empty()) << i;
        EXPECT_EQ(got[static_cast<size_t>(i)],
                  want[static_cast<size_t>(i)])
            << "seed " << i + 1;
    }

    // Results flush to clients before the accounting settles (drain
    // depends on that ordering), so wait for quiescence first.
    waitUntil(
        [&] {
            return counterValue("jobs.completed") == 16 &&
                   counterValue("jobs.outstanding") == 0;
        },
        "all 16 jobs to settle");

    // Final metrics are consistent with exactly these 16 jobs —
    // queried over the wire like any client would.
    auto client = connect();
    ASSERT_NE(client, nullptr);
    std::optional<JsonValue> response =
        client->call(requestEnvelope(1, "metrics"));
    ASSERT_TRUE(response.has_value());
    ASSERT_STREQ(responseType(*response), "metrics");
    const JsonValue *stats = response->find("stats");
    ASSERT_NE(stats, nullptr);
    const JsonValue *counters = stats->find("counters");
    ASSERT_NE(counters, nullptr);
    auto counter = [&](const char *name) -> uint64_t {
        const JsonValue *v = counters->find(name);
        return v && v->isU64() ? v->asU64() : 0;
    };
    EXPECT_EQ(counter("jobs.accepted"), 16u);
    EXPECT_EQ(counter("jobs.completed"), 16u);
    EXPECT_EQ(counter("jobs.rejected"), 0u);
    EXPECT_EQ(counter("jobs.failed"), 0u);
    EXPECT_EQ(counter("jobs.outstanding"), 0u);
    EXPECT_EQ(counter("queue.depth"), 0u);
    EXPECT_GE(counter("conns.accepted"), 17u);
    const JsonValue *histograms = stats->find("histograms");
    ASSERT_NE(histograms, nullptr);
    const JsonValue *total = histograms->find("latency.totalMicros");
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->find("count")->asU64(), 16u);

    // Firing-plan observability rides along in the same snapshot:
    // every completed sim folds its plan counters into the shard
    // stats, so 16 real workload runs must have dispatched events and
    // fired macro-ops (fusion is on by default).
    EXPECT_GT(counter("plan.eventsDispatched"), 0u);
    EXPECT_GT(counter("plan.eventsElided"), 0u);
    EXPECT_GT(counter("plan.macroOps"), 0u);
    EXPECT_GE(counter("plan.fusedOps"), counter("plan.macroOps"));
}

// Satellite (c): malformed input of every shape gets a typed error
// and the daemon stays alive.
TEST_F(DaemonTest, MalformedInputGetsTypedErrorsAndDaemonSurvives)
{
    start();
    auto client = connect();
    ASSERT_NE(client, nullptr);

    struct Bad
    {
        const char *line;
        const char *code;
    };
    const Bad cases[] = {
        {"{", "bad_json"},                       // truncated JSON
        {"{\"v\":1,\"id\":2,\"type\":\"run\",\"run\":{\"workload\":",
         "bad_json"},                            // truncated mid-member
        {"garbage", "bad_json"},
        {"[1,2]", "bad_request"},
        {"{\"v\":\"one\",\"id\":3,\"type\":\"ping\"}", "bad_request"},
        {"{\"v\":9,\"id\":4,\"type\":\"ping\"}", "unsupported_version"},
        {"{\"v\":1,\"id\":5,\"type\":\"frobnicate\"}", "unknown_type"},
        {"{\"v\":1,\"id\":6,\"type\":\"run\",\"run\":"
         "{\"workload\":\"no.such\"}}",
         "unknown_workload"},
        {"{\"v\":1,\"id\":7,\"type\":\"run\",\"run\":"
         "{\"workload\":\"art\",\"pathIndex\":77}}",
         "bad_path_index"},
        {"{\"v\":1,\"id\":8,\"type\":\"run\",\"run\":"
         "{\"workload\":\"art\",\"seed\":\"yes\"}}",
         "bad_seed"},
        {"{\"v\":1,\"id\":9,\"type\":\"run\",\"run\":"
         "{\"workload\":\"art\",\"sleepMillis\":999999999}}",
         "bad_request"},                          // huge field value
    };
    for (const Bad &c : cases) {
        ASSERT_TRUE(client->sendRaw(std::string(c.line) + "\n"));
        std::optional<JsonValue> response = client->readResponse();
        ASSERT_TRUE(response.has_value()) << c.line;
        EXPECT_STREQ(responseType(*response), "error") << c.line;
        EXPECT_EQ(errorCode(*response), c.code) << c.line;
    }

    // The same connection still serves valid requests...
    std::optional<JsonValue> pong =
        client->call(requestEnvelope(100, "ping"));
    ASSERT_TRUE(pong.has_value());
    EXPECT_STREQ(responseType(*pong), "pong");
    EXPECT_EQ(counterValue("requests.errors"),
              static_cast<uint64_t>(std::size(cases)));

    // ...and an over-long line (no newline in sight) gets `oversized`,
    // after which only that connection is dropped.
    auto hog = connect();
    ASSERT_NE(hog, nullptr);
    std::string huge(kMaxRequestLineBytes + 2, 'x');
    ASSERT_TRUE(hog->sendRaw(huge));
    std::optional<JsonValue> oversized = hog->readResponse();
    ASSERT_TRUE(oversized.has_value());
    EXPECT_EQ(errorCode(*oversized), "oversized");
    EXPECT_FALSE(hog->readResponse().has_value()); // connection closed

    // The daemon is still alive for everyone else.
    auto fresh = connect();
    ASSERT_NE(fresh, nullptr);
    std::optional<JsonValue> alive =
        fresh->call(requestEnvelope(1, "ping"));
    ASSERT_TRUE(alive.has_value());
    EXPECT_STREQ(responseType(*alive), "pong");
}

TEST_F(DaemonTest, BackpressureRejectsWhenQueueFull)
{
    start(/*workers=*/1, /*queueCapacity=*/1);
    auto client = connect();
    ASSERT_NE(client, nullptr);

    const RunOpts fast{.invocations = 1, .backends = {"nachos"}};
    RunOpts slow = fast;
    slow.sleepMillis = 300;

    // Job 1 occupies the single worker...
    ASSERT_TRUE(client->sendRequest(runRequest(1, "164.gzip", slow)));
    waitUntil(
        [&] {
            return counterValue("jobs.accepted") == 1 &&
                   counterValue("queue.depth") == 0;
        },
        "job 1 to start running");
    // ...job 2 fills the queue's only slot...
    ASSERT_TRUE(client->sendRequest(runRequest(2, "164.gzip", fast)));
    waitUntil([&] { return counterValue("queue.depth") == 1; },
              "job 2 to be queued");
    // ...so job 3 must bounce with queue_full, immediately.
    ASSERT_TRUE(client->sendRequest(runRequest(3, "164.gzip", fast)));
    std::optional<JsonValue> rejected = client->waitFor(3);
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(errorCode(*rejected), "queue_full");

    // The admitted jobs still complete normally.
    std::optional<JsonValue> first = client->waitFor(1);
    ASSERT_TRUE(first.has_value());
    EXPECT_STREQ(responseType(*first), "result");
    std::optional<JsonValue> second = client->waitFor(2);
    ASSERT_TRUE(second.has_value());
    EXPECT_STREQ(responseType(*second), "result");

    EXPECT_EQ(counterValue("jobs.rejected"), 1u);
    EXPECT_EQ(counterValue("jobs.accepted"), 2u);
    waitUntil([&] { return counterValue("jobs.completed") == 2; },
              "the job accounting to settle");
}

TEST_F(DaemonTest, WatchdogTimesOutQueuedAndRunningJobs)
{
    start(/*workers=*/1);
    auto client = connect();
    ASSERT_NE(client, nullptr);

    const RunOpts fast{.invocations = 1, .backends = {"nachos"}};
    RunOpts slow = fast;
    slow.sleepMillis = 300;

    // Queued expiry: job 2 waits behind the sleeping job 1 and its
    // 50 ms deadline fires before a worker ever picks it up.
    ASSERT_TRUE(client->sendRequest(runRequest(1, "164.gzip", slow)));
    waitUntil(
        [&] {
            return counterValue("jobs.accepted") == 1 &&
                   counterValue("queue.depth") == 0;
        },
        "job 1 to start running");
    RunOpts deadline = fast;
    deadline.timeoutMillis = 50;
    ASSERT_TRUE(
        client->sendRequest(runRequest(2, "164.gzip", deadline)));
    std::optional<JsonValue> expired = client->waitFor(2);
    ASSERT_TRUE(expired.has_value());
    EXPECT_EQ(errorCode(*expired), "timeout");
    std::optional<JsonValue> first = client->waitFor(1);
    ASSERT_TRUE(first.has_value());
    EXPECT_STREQ(responseType(*first), "result");

    // Running expiry: job 3 sleeps past its own deadline; the
    // watchdog answers and the worker's late result is discarded.
    RunOpts overdue = slow;
    overdue.timeoutMillis = 50;
    ASSERT_TRUE(
        client->sendRequest(runRequest(3, "164.gzip", overdue)));
    std::optional<JsonValue> timedOut = client->waitFor(3);
    ASSERT_TRUE(timedOut.has_value());
    EXPECT_EQ(errorCode(*timedOut), "timeout");
    waitUntil([&] { return counterValue("jobs.lateResults") == 1; },
              "the late result to be discarded");
    EXPECT_EQ(counterValue("jobs.expired"), 2u);
    EXPECT_EQ(counterValue("jobs.completed"), 1u);
}

TEST_F(DaemonTest, CancelQueuedJobOnly)
{
    start(/*workers=*/1);
    auto client = connect();
    ASSERT_NE(client, nullptr);

    const RunOpts fast{.invocations = 1, .backends = {"nachos"}};
    RunOpts slow = fast;
    slow.sleepMillis = 300;

    ASSERT_TRUE(client->sendRequest(runRequest(1, "164.gzip", slow)));
    waitUntil(
        [&] {
            return counterValue("jobs.accepted") == 1 &&
                   counterValue("queue.depth") == 0;
        },
        "job 1 to start running");
    ASSERT_TRUE(client->sendRequest(runRequest(2, "164.gzip", fast)));
    waitUntil([&] { return counterValue("queue.depth") == 1; },
              "job 2 to be queued");

    // Cancel the queued job: ok for the canceller, `cancelled` for
    // the job itself.
    JsonValue cancel = requestEnvelope(10, "cancel");
    cancel.set("target", 2);
    std::optional<JsonValue> ok = client->call(cancel);
    ASSERT_TRUE(ok.has_value());
    EXPECT_STREQ(responseType(*ok), "ok");
    std::optional<JsonValue> cancelled = client->waitFor(2);
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(errorCode(*cancelled), "cancelled");

    // A running job, an already-cancelled job, and a made-up id are
    // all not cancellable.
    for (const uint64_t target : {1u, 2u, 99u}) {
        JsonValue again = requestEnvelope(11 + target, "cancel");
        again.set("target", target);
        std::optional<JsonValue> nope = client->call(again);
        ASSERT_TRUE(nope.has_value()) << target;
        EXPECT_EQ(errorCode(*nope), "not_cancellable") << target;
    }

    std::optional<JsonValue> first = client->waitFor(1);
    ASSERT_TRUE(first.has_value());
    EXPECT_STREQ(responseType(*first), "result");
    EXPECT_EQ(counterValue("jobs.cancelled"), 1u);
}

TEST_F(DaemonTest, DuplicateActiveIdRejected)
{
    start(/*workers=*/1);
    auto client = connect();
    ASSERT_NE(client, nullptr);
    RunOpts slow{.invocations = 1, .backends = {"nachos"}};
    slow.sleepMillis = 200;
    ASSERT_TRUE(client->sendRequest(runRequest(1, "164.gzip", slow)));
    waitUntil([&] { return counterValue("jobs.accepted") == 1; },
              "job 1 to be admitted");
    // Same id while job 1 is still active: rejected immediately, so
    // the error arrives before job 1's result.
    ASSERT_TRUE(client->sendRequest(runRequest(1, "164.gzip", {})));
    std::optional<JsonValue> dup = client->waitFor(1);
    ASSERT_TRUE(dup.has_value());
    EXPECT_STREQ(responseType(*dup), "error");
    EXPECT_EQ(errorCode(*dup), "bad_request");
    std::optional<JsonValue> result = client->waitFor(1);
    ASSERT_TRUE(result.has_value());
    EXPECT_STREQ(responseType(*result), "result");
}

TEST_F(DaemonTest, DrainAnswersAdmittedJobsAndRejectsNewOnes)
{
    start(/*workers=*/1);
    auto client = connect();
    ASSERT_NE(client, nullptr);

    RunOpts slow{.invocations = 1, .backends = {"nachos"}};
    slow.sleepMillis = 300;
    RunOpts queued = slow;
    queued.sleepMillis = 50;
    ASSERT_TRUE(client->sendRequest(runRequest(1, "164.gzip", slow)));
    ASSERT_TRUE(client->sendRequest(runRequest(2, "164.gzip", queued)));
    ASSERT_TRUE(client->sendRequest(runRequest(3, "164.gzip", queued)));
    waitUntil([&] { return counterValue("jobs.accepted") == 3; },
              "all three jobs to be admitted");

    std::thread drainer([&] { daemon_->drain(); });
    waitUntil([&] { return counterValue("daemon.draining") == 1; },
              "the drain to begin");

    // A run submitted mid-drain bounces; already-admitted jobs all
    // still get their results before the sockets close.
    ASSERT_TRUE(client->sendRequest(runRequest(4, "164.gzip", {})));
    std::optional<JsonValue> late = client->waitFor(4);
    ASSERT_TRUE(late.has_value());
    EXPECT_EQ(errorCode(*late), "shutting_down");
    for (const uint64_t id : {1u, 2u, 3u}) {
        std::optional<JsonValue> response = client->waitFor(id);
        ASSERT_TRUE(response.has_value()) << id;
        EXPECT_STREQ(responseType(*response), "result") << id;
    }
    drainer.join();

    // After the drain: end-of-stream on the old connection, and no
    // new connections (the socket is gone).
    EXPECT_FALSE(client->readResponse().has_value());
    std::string error;
    EXPECT_EQ(ServiceClient::connectUnix(path_, &error), nullptr);
}

TEST_F(DaemonTest, ShutdownRequestStopsTheDaemon)
{
    start();
    auto client = connect();
    ASSERT_NE(client, nullptr);
    EXPECT_FALSE(daemon_->stopRequested());
    std::optional<JsonValue> ok =
        client->call(requestEnvelope(1, "shutdown"));
    ASSERT_TRUE(ok.has_value());
    EXPECT_STREQ(responseType(*ok), "ok");
    // The `shutdown` handler acknowledges first, then requests the
    // stop — exactly what the nachosd main loop waits on.
    daemon_->waitUntilStopRequested();
    EXPECT_TRUE(daemon_->stopRequested());
}

TEST_F(DaemonTest, DefaultTimeoutAppliesWhenJobSetsNone)
{
    start(/*workers=*/1, /*queueCapacity=*/64,
          /*defaultTimeoutMillis=*/50);
    auto client = connect();
    ASSERT_NE(client, nullptr);
    RunOpts slow{.invocations = 1, .backends = {"nachos"}};
    slow.sleepMillis = 300; // no timeoutMillis: daemon default applies
    ASSERT_TRUE(client->sendRequest(runRequest(1, "164.gzip", slow)));
    std::optional<JsonValue> response = client->waitFor(1);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(errorCode(*response), "timeout");
}

// ---- serving-plane rework: batching, cache, classes, legacy mode ----

// A coalesced bulk burst returns per-request-correct, byte-identical
// results, and the cache/batch metrics add up:
// cache.hits + cache.misses == batch.groups (one front-end lookup per
// executed group).
TEST_F(DaemonTest, BulkBurstCoalescesAndStaysByteIdentical)
{
    DaemonConfig config;
    config.workers = 1; // one shard: the burst must coalesce
    startWith(config);
    auto client = connect();
    ASSERT_NE(client, nullptr);

    constexpr uint64_t kJobs = 12;
    RunOpts opts{.seed = 5, .invocations = 2, .backends = {"nachos"}};
    opts.klass = "bulk";
    for (uint64_t id = 1; id <= kJobs; ++id)
        ASSERT_TRUE(
            client->sendRequest(runRequest(id, "164.gzip", opts)));
    const std::string want = directOutcomeJson("164.gzip", opts);
    for (uint64_t id = 1; id <= kJobs; ++id) {
        std::optional<JsonValue> response = client->waitFor(id);
        ASSERT_TRUE(response.has_value()) << id;
        ASSERT_STREQ(responseType(*response), "result") << id;
        EXPECT_EQ(dumpJson(*response->find("outcome")), want) << id;
    }

    waitUntil([&] { return counterValue("jobs.completed") == kJobs; },
              "the accounting to settle");
    EXPECT_EQ(counterValue("jobs.accepted"), kJobs);
    EXPECT_EQ(counterValue("jobs.acceptedBulk"), kJobs);
    const uint64_t groups = counterValue("batch.groups");
    EXPECT_GE(groups, 1u);
    EXPECT_LE(groups, kJobs);
    EXPECT_EQ(counterValue("batch.lanes"), kJobs); // 1 backend each
    EXPECT_EQ(counterValue("cache.hits") + counterValue("cache.misses"),
              groups);
    EXPECT_GE(counterValue("cache.hits"), groups - 1); // one key
    EXPECT_EQ(counterValue("cache.size"), 1u);
}

// Interactive and bulk rings are bounded independently; filling the
// bulk ring must not reject interactive work.
TEST_F(DaemonTest, PerClassQueueBounds)
{
    DaemonConfig config;
    config.workers = 1;
    config.queueCapacity = 8;    // interactive: roomy
    config.bulkQueueCapacity = 1; // bulk: one slot
    startWith(config);
    auto client = connect();
    ASSERT_NE(client, nullptr);

    // A sleeper occupies the worker (interactive, runs immediately).
    RunOpts slow{.invocations = 1, .backends = {"nachos"}};
    slow.sleepMillis = 300;
    ASSERT_TRUE(client->sendRequest(runRequest(1, "164.gzip", slow)));
    waitUntil(
        [&] {
            return counterValue("jobs.accepted") == 1 &&
                   counterValue("queue.depth") == 0;
        },
        "the sleeper to start running");

    // Bulk job 2 takes the single bulk slot; bulk job 3 bounces.
    RunOpts fast{.invocations = 1, .backends = {"nachos"}};
    RunOpts bulk = fast;
    bulk.klass = "bulk";
    for (const uint64_t id : {2u, 3u})
        ASSERT_TRUE(
            client->sendRequest(runRequest(id, "164.gzip", bulk)));
    std::optional<JsonValue> rejected = client->waitFor(3);
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(errorCode(*rejected), "queue_full");

    // Interactive admission is unaffected by the full bulk ring.
    ASSERT_TRUE(client->sendRequest(runRequest(4, "164.gzip", fast)));
    std::optional<JsonValue> interactive = client->waitFor(4);
    ASSERT_TRUE(interactive.has_value());
    EXPECT_STREQ(responseType(*interactive), "result");

    for (const uint64_t id : {1u, 2u}) {
        std::optional<JsonValue> response = client->waitFor(id);
        ASSERT_TRUE(response.has_value()) << id;
        EXPECT_STREQ(responseType(*response), "result") << id;
    }
    EXPECT_EQ(counterValue("jobs.rejected"), 1u);
}

// Legacy mode (--max-batch-lanes 1 --region-cache 0) serves the same
// bytes through the PR3-faithful runWorkload path.
TEST_F(DaemonTest, LegacyModeMatchesDirectRunner)
{
    DaemonConfig config;
    config.workers = 1;
    config.maxBatchLanes = 1;
    config.regionCacheEntries = 0;
    startWith(config);
    auto client = connect();
    ASSERT_NE(client, nullptr);

    RunOpts opts{.seed = 9, .invocations = 2, .backends = {"nachos"}};
    opts.klass = "bulk";
    for (uint64_t id = 1; id <= 4; ++id)
        ASSERT_TRUE(
            client->sendRequest(runRequest(id, "179.art", opts)));
    const std::string want = directOutcomeJson("179.art", opts);
    for (uint64_t id = 1; id <= 4; ++id) {
        std::optional<JsonValue> response = client->waitFor(id);
        ASSERT_TRUE(response.has_value()) << id;
        ASSERT_STREQ(responseType(*response), "result") << id;
        EXPECT_EQ(dumpJson(*response->find("outcome")), want) << id;
    }
    waitUntil([&] { return counterValue("jobs.completed") == 4; },
              "the accounting to settle");
    // No batching, no cache in legacy mode.
    EXPECT_EQ(counterValue("batch.groups"), 0u);
    EXPECT_EQ(counterValue("cache.hits") + counterValue("cache.misses"),
              0u);
}

// The global admission invariant the metrics endpoint promises:
// accepted >= completed + cancelled + expired at every instant, and
// equality once quiescent.
TEST_F(DaemonTest, AdmissionAccountingBalances)
{
    DaemonConfig config;
    config.workers = 2;
    startWith(config);

    constexpr int kClients = 4;
    constexpr uint64_t kPerClient = 6;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            std::string error;
            auto client = ServiceClient::connectUnix(path_, &error);
            if (!client) {
                ++failures;
                return;
            }
            RunOpts opts{.seed = static_cast<uint64_t>(c + 1),
                         .invocations = 1,
                         .backends = {"nachos"}};
            if (c % 2)
                opts.klass = "bulk";
            for (uint64_t id = 1; id <= kPerClient; ++id) {
                if (!client->sendRequest(
                        runRequest(id, "164.gzip", opts))) {
                    ++failures;
                    return;
                }
            }
            for (uint64_t id = 1; id <= kPerClient; ++id) {
                std::optional<JsonValue> response = client->waitFor(id);
                if (!response ||
                    std::string(responseType(*response)) != "result")
                    ++failures;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    constexpr uint64_t kTotal = kClients * kPerClient;
    waitUntil([&] { return counterValue("jobs.completed") == kTotal; },
              "the accounting to settle");
    EXPECT_EQ(counterValue("jobs.accepted"), kTotal);
    EXPECT_EQ(counterValue("jobs.accepted"),
              counterValue("jobs.completed") +
                  counterValue("jobs.cancelled") +
                  counterValue("jobs.expired"));
    EXPECT_EQ(counterValue("jobs.acceptedBulk") +
                  counterValue("jobs.acceptedInteractive"),
              kTotal);
    // Every executed group did exactly one front-end lookup.
    EXPECT_EQ(counterValue("cache.hits") + counterValue("cache.misses"),
              counterValue("batch.groups"));
}

} // namespace
} // namespace nachos
