#include <gtest/gtest.h>

#include "harness/run_json.hh"
#include "harness/runner.hh"
#include "support/alloc_hook.hh"
#include "workloads/benchmark_info.hh"

#include "service/protocol.hh"
#include "support/json.hh"

namespace nachos {
namespace {

TEST(ParseRequestLine, PingMetricsShutdown)
{
    Request req;
    CodecError err;
    ASSERT_TRUE(parseRequestLine("{\"v\":1,\"id\":3,\"type\":\"ping\"}",
                                 req, err));
    EXPECT_EQ(req.type, Request::Type::Ping);
    EXPECT_EQ(req.id, 3u);
    ASSERT_TRUE(parseRequestLine(
        "{\"v\":1,\"id\":4,\"type\":\"metrics\"}", req, err));
    EXPECT_EQ(req.type, Request::Type::Metrics);
    ASSERT_TRUE(parseRequestLine(
        "{\"v\":1,\"id\":5,\"type\":\"shutdown\"}", req, err));
    EXPECT_EQ(req.type, Request::Type::Shutdown);
}

TEST(ParseRequestLine, RunRequest)
{
    Request req;
    CodecError err;
    ASSERT_TRUE(parseRequestLine(
        "{\"v\":1,\"id\":9,\"type\":\"run\",\"run\":"
        "{\"workload\":\"art\",\"seed\":2}}",
        req, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(req.type, Request::Type::Run);
    EXPECT_EQ(req.id, 9u);
    ASSERT_NE(req.job.info, nullptr);
    EXPECT_EQ(req.job.info->name, "179.art");
    EXPECT_EQ(req.job.request.seed, 2u);
}

TEST(ParseRequestLine, CancelRequest)
{
    Request req;
    CodecError err;
    ASSERT_TRUE(parseRequestLine(
        "{\"v\":1,\"id\":10,\"type\":\"cancel\",\"target\":9}", req,
        err));
    EXPECT_EQ(req.type, Request::Type::Cancel);
    EXPECT_EQ(req.cancelTarget, 9u);
    EXPECT_FALSE(parseRequestLine(
        "{\"v\":1,\"id\":10,\"type\":\"cancel\"}", req, err));
    EXPECT_EQ(err.code, "bad_request");
    EXPECT_FALSE(parseRequestLine(
        "{\"v\":1,\"id\":10,\"type\":\"cancel\",\"target\":0}", req,
        err));
    EXPECT_EQ(err.code, "bad_request");
}

struct BadLine
{
    const char *line;
    const char *code;
};

TEST(ParseRequestLine, TypedErrors)
{
    const BadLine cases[] = {
        {"", "bad_json"},
        {"{", "bad_json"},
        {"nonsense", "bad_json"},
        {"\x01\x02garbage", "bad_json"},
        {"[1,2,3]", "bad_request"},
        {"\"just a string\"", "bad_request"},
        {"{\"v\":1,\"type\":\"ping\"}", "bad_request"},     // no id
        {"{\"v\":1,\"id\":0,\"type\":\"ping\"}", "bad_request"},
        {"{\"v\":1,\"id\":\"x\",\"type\":\"ping\"}", "bad_request"},
        {"{\"id\":1,\"type\":\"ping\"}", "bad_request"},    // no v
        {"{\"v\":2,\"id\":1,\"type\":\"ping\"}", "unsupported_version"},
        {"{\"v\":1,\"id\":1}", "bad_request"},              // no type
        {"{\"v\":1,\"id\":1,\"type\":7}", "bad_request"},
        {"{\"v\":1,\"id\":1,\"type\":\"frob\"}", "unknown_type"},
        {"{\"v\":1,\"id\":1,\"type\":\"ping\",\"x\":1}", "bad_request"},
        {"{\"v\":1,\"id\":1,\"type\":\"run\"}", "bad_request"},
        {"{\"v\":1,\"id\":1,\"type\":\"run\",\"run\":"
         "{\"workload\":\"nope\"}}",
         "unknown_workload"},
        {"{\"v\":1,\"id\":1,\"type\":\"run\",\"run\":"
         "{\"workload\":\"art\",\"pathIndex\":9}}",
         "bad_path_index"},
    };
    for (const BadLine &c : cases) {
        Request req;
        CodecError err;
        EXPECT_FALSE(parseRequestLine(c.line, req, err))
            << "accepted: " << c.line;
        EXPECT_EQ(err.code, c.code) << c.line;
    }
}

TEST(ParseRequestLine, IdSurvivesLaterErrors)
{
    // The id parses before the failing member, so the daemon's error
    // response can echo it back.
    Request req;
    CodecError err;
    EXPECT_FALSE(parseRequestLine(
        "{\"id\":42,\"v\":2,\"type\":\"ping\"}", req, err));
    EXPECT_EQ(err.code, "unsupported_version");
    EXPECT_EQ(req.id, 42u);
}

TEST(ParseRequestLine, OversizedLineRejected)
{
    std::string line = "{\"v\":1,\"id\":1,\"type\":\"ping\",\"p\":\"";
    line.append(kMaxRequestLineBytes, 'x');
    line += "\"}";
    Request req;
    CodecError err;
    EXPECT_FALSE(parseRequestLine(line, req, err));
    EXPECT_EQ(err.code, "oversized");
}

TEST(Responses, BuildersIncludeEnvelope)
{
    EXPECT_EQ(dumpJson(errorResponse(7, "queue_full", "try later")),
              "{\"v\":1,\"id\":7,\"type\":\"error\","
              "\"code\":\"queue_full\",\"message\":\"try later\"}");
    EXPECT_EQ(dumpJson(pongResponse(1)),
              "{\"v\":1,\"id\":1,\"type\":\"pong\"}");
    EXPECT_EQ(dumpJson(okResponse(2)),
              "{\"v\":1,\"id\":2,\"type\":\"ok\"}");
    JsonValue outcome = JsonValue::makeObject();
    outcome.set("cycles", 5);
    EXPECT_EQ(dumpJson(resultResponse(3, std::move(outcome))),
              "{\"v\":1,\"id\":3,\"type\":\"result\","
              "\"outcome\":{\"cycles\":5}}");
}

TEST(Responses, RunEnvelopeRoundTrips)
{
    Request req;
    CodecError err;
    ASSERT_TRUE(parseRequestLine(
        "{\"v\":1,\"id\":6,\"type\":\"run\",\"run\":"
        "{\"workload\":\"183.equake\",\"backends\":[\"nachos\"]}}",
        req, err));
    const JsonValue again = runRequestEnvelope(req.id, req.job);
    Request req2;
    ASSERT_TRUE(parseRequestLine(dumpJson(again), req2, err))
        << err.code << ": " << err.message;
    EXPECT_EQ(req2.id, 6u);
    EXPECT_EQ(req2.job.info, req.job.info);
    EXPECT_FALSE(req2.job.request.runLsq);
    EXPECT_TRUE(req2.job.request.runNachos);
}

TEST(ParseRequestLine, AdmissionClass)
{
    Request req;
    CodecError err;
    ASSERT_TRUE(parseRequestLine(
        "{\"v\":1,\"id\":1,\"type\":\"run\",\"run\":"
        "{\"workload\":\"art\"}}",
        req, err));
    EXPECT_EQ(req.job.klass, AdmitClass::Interactive); // default
    ASSERT_TRUE(parseRequestLine(
        "{\"v\":1,\"id\":2,\"type\":\"run\",\"run\":"
        "{\"workload\":\"art\",\"class\":\"bulk\"}}",
        req, err));
    EXPECT_EQ(req.job.klass, AdmitClass::Bulk);
    ASSERT_TRUE(parseRequestLine(
        "{\"v\":1,\"id\":3,\"type\":\"run\",\"run\":"
        "{\"workload\":\"art\",\"class\":\"interactive\"}}",
        req, err));
    EXPECT_EQ(req.job.klass, AdmitClass::Interactive);
    EXPECT_FALSE(parseRequestLine(
        "{\"v\":1,\"id\":4,\"type\":\"run\",\"run\":"
        "{\"workload\":\"art\",\"class\":\"batch\"}}",
        req, err));
    EXPECT_EQ(err.code, "bad_request");
}

TEST(ParseRequest, PreparsedTreeMatchesLineParser)
{
    // The daemon's zero-allocation path parses the line into a reused
    // tree and hands the tree to parseRequest; both routes must agree.
    const char *line =
        "{\"v\":1,\"id\":11,\"type\":\"run\",\"run\":"
        "{\"workload\":\"164.gzip\",\"seed\":5,"
        "\"backends\":[\"sw\"],\"class\":\"bulk\"}}";
    Request viaLine;
    CodecError err;
    ASSERT_TRUE(parseRequestLine(line, viaLine, err));

    JsonValue tree;
    ASSERT_TRUE(parseJsonInPlace(line, tree).ok);
    Request viaTree;
    ASSERT_TRUE(parseRequest(tree, viaTree, err));
    EXPECT_EQ(viaTree.type, viaLine.type);
    EXPECT_EQ(viaTree.id, viaLine.id);
    EXPECT_EQ(viaTree.job.info, viaLine.job.info);
    EXPECT_EQ(viaTree.job.request.seed, 5u);
    EXPECT_EQ(viaTree.job.klass, AdmitClass::Bulk);

    // Errors agree too.
    ASSERT_TRUE(
        parseJsonInPlace("{\"v\":9,\"id\":1,\"type\":\"ping\"}", tree)
            .ok);
    EXPECT_FALSE(parseRequest(tree, viaTree, err));
    EXPECT_EQ(err.code, "unsupported_version");
}

TEST(Responses, AppendResultResponseMatchesTreeEncoder)
{
    // The steady-state byte path must emit exactly what the tree
    // encoder emits, for every backend combination.
    const BenchmarkInfo &info = *findBenchmark("179.art");
    for (const char *backend : {"lsq", "sw", "nachos"}) {
        RunRequest req;
        req.seed = 4;
        req.runLsq = backend == std::string("lsq");
        req.runSw = backend == std::string("sw");
        req.runNachos = backend == std::string("nachos");
        req.invocationsOverride = 2;
        const RunOutcome outcome = runWorkload(info, req);
        const OutcomeSummary summary =
            summarizeOutcome(info, req, outcome);
        std::string appended;
        appendResultResponse(appended, 77, summary);
        EXPECT_EQ(appended,
                  dumpJson(resultResponse(77, encodeOutcome(summary))))
            << backend;
    }
}

TEST(Responses, AppendResultResponseIsZeroAllocWhenWarm)
{
    const BenchmarkInfo &info = *findBenchmark("164.gzip");
    RunRequest req;
    req.seed = 1;
    req.invocationsOverride = 1;
    const RunOutcome outcome = runWorkload(info, req);
    const OutcomeSummary summary = summarizeOutcome(info, req, outcome);
    std::string buf;
    appendResultResponse(buf, 1, summary); // warm to high-water mark
    const uint64_t before = threadAllocCount();
    for (uint64_t id = 2; id < 102; ++id) {
        buf.clear();
        appendResultResponse(buf, id, summary);
    }
    EXPECT_EQ(threadAllocCount() - before, 0u)
        << "warm result encoding touched the heap";
}

} // namespace
} // namespace nachos
