/**
 * Property tests for the classification core: the SCEV-style
 * recurrence-overlap solver is validated against brute-force scans,
 * and classifyDiff verdicts are validated against evaluated ground
 * truth across randomized coefficient grids.
 */

#include <gtest/gtest.h>

#include "analysis/stage1_basic.hh"
#include "ir/builder.hh"
#include "support/random.hh"

namespace nachos {
namespace {

/** Brute-force: does d0 + ct*t overlap (-sa, sb) for any t in [0, N]? */
bool
bruteOverlap(int64_t d0, int64_t ct, uint32_t sa, uint32_t sb,
             int64_t horizon)
{
    for (int64_t t = 0; t <= horizon; ++t) {
        int64_t d = d0 + ct * t;
        if (d < static_cast<int64_t>(sb) &&
            d + static_cast<int64_t>(sa) > 0) {
            return true;
        }
    }
    return false;
}

class RecurrenceSolver : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RecurrenceSolver, MatchesBruteForce)
{
    Rng rng(GetParam() * 77 + 5);
    for (int trial = 0; trial < 200; ++trial) {
        const int64_t d0 = rng.range(-256, 256);
        int64_t ct = rng.range(-32, 32);
        if (ct == 0)
            ct = 1;
        const uint32_t sa = static_cast<uint32_t>(rng.range(1, 3)) * 4;
        const uint32_t sb = static_cast<uint32_t>(rng.range(1, 3)) * 4;

        // Build a 2-op region whose diff is exactly d0 + ct*t.
        RegionBuilder b("rec");
        ObjectId obj = b.object("A", 1 << 20);
        OpId v = b.constant(1);
        // a: base + (ct+8)*t + d0 + 1024;  b: base + 8*t + 1024.
        AddrExpr ea = b.stream(obj, ct + 8, d0 + 1024);
        AddrExpr eb = b.stream(obj, 8, 1024);
        b.store(ea, v, sa);
        b.load(eb, sb);
        Region r = b.build();
        PairRelation rel =
            classifyPair(r, r.memOps()[0], r.memOps()[1], {});

        // Solver horizon is unbounded; brute force over a window wide
        // enough to cover every crossing of the overlap interval.
        const bool overlap = bruteOverlap(d0, ct, sa, sb, 2048);
        if (overlap) {
            EXPECT_NE(rel, PairRelation::No)
                << "d0=" << d0 << " ct=" << ct << " sa=" << sa
                << " sb=" << sb;
        } else {
            EXPECT_EQ(rel, PairRelation::No)
                << "d0=" << d0 << " ct=" << ct << " sa=" << sa
                << " sb=" << sb;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecurrenceSolver,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

class ConstantDiffGrid : public ::testing::TestWithParam<int>
{};

TEST_P(ConstantDiffGrid, ExactPartialAndDisjointVerdicts)
{
    const int d = GetParam();
    RegionBuilder b("grid");
    ObjectId obj = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(obj, 512 + d), v, 8);
    b.load(b.at(obj, 512), 8);
    Region r = b.build();
    PairRelation rel =
        classifyPair(r, r.memOps()[0], r.memOps()[1], {});

    if (d == 0)
        EXPECT_EQ(rel, PairRelation::MustExact);
    else if (d > -8 && d < 8)
        EXPECT_EQ(rel, PairRelation::MustPartial);
    else
        EXPECT_EQ(rel, PairRelation::No);
}

INSTANTIATE_TEST_SUITE_P(Offsets, ConstantDiffGrid,
                         ::testing::Range(-12, 13));

TEST(ClassifyDiff, MixedSymbolKindsStayMay)
{
    // Invocation term + opaque term: undecidable even for Stage 4.
    RegionBuilder b("mixed");
    ObjectId idx = b.object("idx", 4096);
    ObjectId obj = b.object("A", 1 << 20);
    OpId il = b.load(b.at(idx, 0));
    SymbolId osym = b.opaqueSym("o", il, 64, 8);
    OpId v = b.constant(1);
    AddrExpr ea = b.stream(obj, 16, 0);
    ea.terms.push_back({osym, 1});
    ea.canonicalize();
    b.store(ea, v, 8);
    b.load(b.stream(obj, 8, 0), 8);
    Region r = b.build();

    ClassifyOptions shapes;
    shapes.useShapes = true;
    shapes.useProvenance = true;
    EXPECT_EQ(classifyPair(r, r.memOps()[1], r.memOps()[2], shapes),
              PairRelation::May);
}

} // namespace
} // namespace nachos
