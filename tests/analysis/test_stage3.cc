#include <gtest/gtest.h>

#include "analysis/stage1_basic.hh"
#include "analysis/stage3_redundancy.hh"
#include "ir/builder.hh"

namespace nachos {
namespace {

TEST(Stage3, DataDependenceSubsumesOrdering)
{
    // load A[0] -> compute -> store A[0]: the MUST relation is implied
    // by the data chain (Figure 8 of the paper).
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId ld = b.load(b.at(a, 0));
    OpId x = b.iadd(ld, ld);
    b.store(b.at(a, 0), x);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    ASSERT_EQ(m.relation(0, 1), PairRelation::MustExact);
    Stage3Stats s = runStage3(r, m);
    EXPECT_FALSE(m.enforced(0, 1));
    EXPECT_EQ(s.removed, 1u);
    EXPECT_EQ(s.retained, 0u);
}

TEST(Stage3, IndependentOpsKeepEnforcement)
{
    // store A[0] ... store A[0] with no connecting dataflow.
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v1 = b.constant(1);
    OpId v2 = b.constant(2);
    b.store(b.at(a, 0), v1);
    b.store(b.at(a, 0), v2);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    Stage3Stats s = runStage3(r, m);
    EXPECT_TRUE(m.enforced(0, 1));
    EXPECT_EQ(s.retained, 1u);
}

TEST(Stage3, MustChainSubsumesLongSpan)
{
    // Three independent stores to the same address: retained edges
    // 0->1 and 1->2 make 0->2 redundant via MDE transitivity.
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);
    b.store(b.at(a, 0), v);
    b.store(b.at(a, 0), v);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    Stage3Stats s = runStage3(r, m);
    EXPECT_TRUE(m.enforced(0, 1));
    EXPECT_TRUE(m.enforced(1, 2));
    EXPECT_FALSE(m.enforced(0, 2));
    EXPECT_EQ(s.removed, 1u);
    EXPECT_EQ(s.retained, 2u);
}

TEST(Stage3, StLdMustKeptEvenIfRedundant)
{
    // store A[0] = f(load A[0]); then a second load A[0] that also
    // consumes the store's value transitively would still keep its
    // ST->LD edge for forwarding.
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(3);
    OpId st = b.store(b.at(a, 0), v);
    // Give the load a data dependence on something after the store by
    // wiring the store's address dep? Stores produce no value, so the
    // only way a path exists is via MDEs. Build: ST -> LD (must) plus
    // LD1 -> ST (order) chain making ST..LD redundant is impossible
    // without a mid op; instead check directly that a ST->LD pair
    // subsumed by a MUST chain is still retained.
    (void)st;
    b.load(b.at(a, 0)); // forwarding candidate
    b.load(b.at(a, 0)); // second load
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    Stage3Stats s = runStage3(r, m);
    // Both ST->LD pairs retained (forwarding), LD-LD irrelevant.
    EXPECT_TRUE(m.enforced(0, 1));
    EXPECT_TRUE(m.enforced(0, 2));
    EXPECT_EQ(s.removed, 0u);
}

TEST(Stage3, MayNotSubsumedByMayChain)
{
    // Three stores with pairwise MAY relations (distinct params): the
    // chain 0->1->2 must NOT subsume 0->2, since MAY edges enforce
    // nothing when the runtime check clears them.
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    ObjectId d = b.object("D", 4096);
    ParamId p0 = b.pointerParam("p0", a);
    ParamId p1 = b.pointerParam("p1", c);
    ParamId p2 = b.pointerParam("p2", d);
    OpId v = b.constant(1);
    b.store(b.atParam(p0, 0), v);
    b.store(b.atParam(p1, 0), v);
    b.store(b.atParam(p2, 0), v);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    ASSERT_EQ(m.relation(0, 2), PairRelation::May);
    runStage3(r, m);
    EXPECT_TRUE(m.enforced(0, 1));
    EXPECT_TRUE(m.enforced(1, 2));
    EXPECT_TRUE(m.enforced(0, 2)); // no unsound subsumption
}

TEST(Stage3, MaySubsumedByDataDependence)
{
    // Younger store's data transitively depends on the older load,
    // so the MAY relation between them needs no edge.
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a); // unknown provenance
    OpId ld = b.load(b.atParam(p, 0));
    OpId x = b.imul(ld, ld);
    OpId y = b.iadd(x, ld);
    b.store(b.at(a, 128), y); // MAY vs the param load
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    ASSERT_EQ(m.relation(0, 1), PairRelation::May);
    runStage3(r, m);
    EXPECT_FALSE(m.enforced(0, 1));
}

TEST(Stage3, NoPairsNeverEnforced)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);
    b.store(b.at(c, 0), v);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    runStage3(r, m);
    EXPECT_FALSE(m.enforced(0, 1));
}

TEST(Stage3, MustSubsumesMayAcrossSameSpan)
{
    // op0 store X (param, MAY vs others), op1 store A[0], op2 store
    // A[0]: retained MUST 1->2. A MAY 0->2 with a retained MAY 0->1
    // must still be kept (MAY chains don't subsume), but a MAY 0->2
    // with retained MUST path 0->..2 would be dropped. Construct:
    // store A[0] (op0), store A[0] (op1) via MUST, and param store
    // (op2) that MAYs both: MAY 0->2 not subsumed by MUST 0->1.
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);        // 0
    b.store(b.at(a, 0), v);        // 1 MUST after 0
    b.store(b.atParam(p, 0), v);   // 2 MAY vs both
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    runStage3(r, m);
    EXPECT_TRUE(m.enforced(0, 1));  // MUST retained
    EXPECT_TRUE(m.enforced(1, 2));  // MAY retained
    // 0->2: path 0 -(MUST)-> 1 exists but 1->2 is MAY, so no sound
    // chain; must be retained.
    EXPECT_TRUE(m.enforced(0, 2));
}

} // namespace
} // namespace nachos
