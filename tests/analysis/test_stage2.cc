#include <gtest/gtest.h>

#include "analysis/stage1_basic.hh"
#include "analysis/stage2_interproc.hh"
#include "ir/builder.hh"

namespace nachos {
namespace {

TEST(Stage2, ProvenanceResolvesMayToNo)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    ParamId p = b.pointerParam("p", a);
    ParamId q = b.pointerParam("q", c);
    b.paramProvenance(p, a);
    b.paramProvenance(q, c);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v);
    b.load(b.atParam(q, 0));
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    EXPECT_EQ(m.relation(0, 1), PairRelation::May);
    Stage2Stats s = runStage2(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::No);
    EXPECT_EQ(s.toNo, 1u);
    EXPECT_EQ(s.examined, 1u);
}

TEST(Stage2, ProvenanceResolvesMayToMust)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a);
    ParamId q = b.pointerParam("q", a);
    b.paramProvenance(p, a, 0);
    b.paramProvenance(q, a, 0);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 16), v, 8);
    b.load(b.atParam(q, 16), 8);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    EXPECT_EQ(m.relation(0, 1), PairRelation::May);
    Stage2Stats s = runStage2(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::MustExact);
    EXPECT_EQ(s.toMust, 1u);
}

TEST(Stage2, ChainedProvenanceThroughOuterParam)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    // Frames: inner param p = (outer param q) + 64; q = &C.
    ParamId q_outer = b.pointerParam("q_outer", c);
    ParamId p = b.pointerParam("p", c, 64);
    b.paramProvenance(q_outer, c);
    b.paramProvenanceViaParam(p, q_outer, 64);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);     // global A
    b.load(b.atParam(p, 0));    // resolves to C+64
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    EXPECT_EQ(m.relation(0, 1), PairRelation::May);
    runStage2(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::No);
}

TEST(Stage2, ChainedProvenanceSameObjectExactMust)
{
    RegionBuilder b;
    ObjectId c = b.object("C", 4096);
    ParamId q_outer = b.pointerParam("q_outer", c);
    ParamId p = b.pointerParam("p", c, 64);
    b.paramProvenance(q_outer, c);
    b.paramProvenanceViaParam(p, q_outer, 64);
    OpId v = b.constant(1);
    b.store(b.at(c, 64), v, 8); // directly C+64
    b.load(b.atParam(p, 0), 8); // resolves to C+64
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    EXPECT_EQ(m.relation(0, 1), PairRelation::May);
    runStage2(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::MustExact);
}

TEST(Stage2, UnresolvedParamStaysMay)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    ParamId p = b.pointerParam("p", a); // no provenance
    ParamId q = b.pointerParam("q", c);
    b.paramProvenance(q, c);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v);
    b.load(b.atParam(q, 0));
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    runStage2(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::May);
}

TEST(Stage2, DoesNotTouchNonMayPairs)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);
    b.load(b.at(a, 0));
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    Stage2Stats s = runStage2(r, m);
    EXPECT_EQ(s.examined, 0u);
    EXPECT_EQ(m.relation(0, 1), PairRelation::MustExact);
}

TEST(Stage2, ParamVsEscapingGlobalResolved)
{
    // Param provably points to C; the other access is to global A.
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    ParamId p = b.pointerParam("p", c);
    b.paramProvenance(p, c);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);
    b.load(b.atParam(p, 0));
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    EXPECT_EQ(m.relation(0, 1), PairRelation::May);
    runStage2(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::No);
}

} // namespace
} // namespace nachos
