#include <gtest/gtest.h>

#include "analysis/stage1_basic.hh"
#include "analysis/stage4_polyhedral.hh"
#include "ir/builder.hh"

namespace nachos {
namespace {

TEST(Stage4, DistinctRowsResolvedToNo)
{
    // A[0][j] vs A[1][j]: symbolic at stage 1, disjoint once the row
    // stride is known.
    RegionBuilder b;
    ObjectId m2 = b.object2d("M", 64, 64, DataType::F64);
    OpId v = b.constant(1);
    b.store(b.at2d(m2, 0, 3), v, 8);
    b.load(b.at2d(m2, 1, 3), 8);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    ASSERT_EQ(m.relation(0, 1), PairRelation::May);
    Stage4Stats s = runStage4(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::No);
    EXPECT_EQ(s.toNo, 1u);
    EXPECT_FALSE(m.enforced(0, 1));
}

TEST(Stage4, SameCellResolvedToMust)
{
    RegionBuilder b;
    ObjectId m2 = b.object2d("M", 64, 64, DataType::F64);
    OpId v = b.constant(1);
    b.store(b.at2d(m2, 2, 5), v, 8);
    b.load(b.at2d(m2, 2, 5), 8);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    // Stage 1: identical expressions cancel entirely, so this is
    // already MUST even with symbolic strides.
    EXPECT_EQ(m.relation(0, 1), PairRelation::MustExact);
}

TEST(Stage4, SameCellDifferentFormResolvedToMust)
{
    // A[1][0] written as row term vs A[0][cols] written as column
    // offset: equal addresses once the stride is substituted.
    RegionBuilder b;
    ObjectId m2 = b.object2d("M", 64, 64, DataType::F64);
    OpId v = b.constant(1);
    b.store(b.at2d(m2, 1, 0), v, 8);
    b.load(b.at2d(m2, 0, 64), 8); // 64*8 bytes == one row stride
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    ASSERT_EQ(m.relation(0, 1), PairRelation::May);
    Stage4Stats s = runStage4(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::MustExact);
    EXPECT_EQ(s.toMust, 1u);
    EXPECT_TRUE(m.enforced(0, 1));
}

TEST(Stage4, StencilNeighborsResolved)
{
    // The equake-style pattern: w[r][0] += A[r][0]*v[r][0] with
    // accesses to adjacent rows all proved independent.
    RegionBuilder b;
    ObjectId w = b.object2d("w", 128, 4, DataType::F64);
    ObjectId av = b.object2d("A", 128, 4, DataType::F64);
    OpId l0 = b.load(b.at2d(av, 0, 0), 8);
    OpId l1 = b.load(b.at2d(av, 1, 0), 8);
    OpId sum = b.fadd(l0, l1);
    b.store(b.at2d(w, 0, 0), sum, 8);
    b.store(b.at2d(w, 1, 0), sum, 8);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    Stage4Stats s = runStage4(r, m);
    (void)s;
    // All relevant pairs (anything vs the stores) must be NO now.
    PairCounts c = m.counts();
    EXPECT_EQ(c.may, 0u);
    EXPECT_EQ(c.must, 0u);
    EXPECT_GT(c.no, 0u);
}

TEST(Stage4, ThreeDimensionalAccessesResolved)
{
    // lbm-style lattice: A[p][r][c] with two symbolic strides.
    RegionBuilder b;
    ObjectId lat = b.object3d("L", 8, 16, 16, DataType::F64);
    OpId v = b.constant(1);
    b.store(b.at3d(lat, 1, 2, 3), v, 8);
    b.load(b.at3d(lat, 1, 2, 4), 8);  // same plane/row, next col
    b.load(b.at3d(lat, 2, 2, 3), 8);  // next plane, same row/col
    b.load(b.at3d(lat, 1, 2, 3), 8);  // exact same cell
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    // Identical plane/row terms cancel at Stage 1 (column diff only).
    EXPECT_EQ(m.relation(0, 1), PairRelation::No);
    // A plane-index difference leaves a symbolic term: MAY until the
    // stride is delinearized.
    EXPECT_EQ(m.relation(0, 2), PairRelation::May);
    runStage4(r, m);
    EXPECT_EQ(m.relation(0, 2), PairRelation::No);
    EXPECT_EQ(m.relation(0, 3), PairRelation::MustExact);
}

TEST(Stage4, ThreeDimensionalLinearizedEquivalence)
{
    // A[1][0][0] written as plane term vs A[0][rows][0] written as
    // row term: equal once both strides are substituted.
    RegionBuilder b;
    ObjectId lat = b.object3d("L", 8, 16, 16, DataType::F64);
    OpId v = b.constant(1);
    b.store(b.at3d(lat, 1, 0, 0), v, 8);
    b.load(b.at3d(lat, 0, 16, 0), 8); // 16 rows == one plane
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    ASSERT_EQ(m.relation(0, 1), PairRelation::May);
    runStage4(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::MustExact);
}

TEST(Stage4, OpaqueStaysMay)
{
    RegionBuilder b;
    ObjectId idx = b.object("idx", 4096);
    ObjectId a = b.object("A", 1 << 16);
    OpId il = b.load(b.at(idx, 0));
    SymbolId s = b.opaqueSym("i", il, 512, 8);
    AddrExpr gather = b.at(a, 0);
    gather.terms.push_back({s, 1});
    OpId v = b.constant(1);
    b.store(gather, v, 8);
    b.load(b.at(a, 64), 8);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    Stage4Stats st = runStage4(r, m);
    EXPECT_EQ(st.toNo + st.toMust, 0u);
    EXPECT_EQ(m.relation(1, 2), PairRelation::May);
}

TEST(Stage4, ParamBasedMultidimResolvedWithProvenance)
{
    // The 2-D object is reached through params with provenance; Stage 4
    // builds on Stage-2-style resolution (useProvenance on).
    RegionBuilder b;
    ObjectId m2 = b.object2d("M", 64, 64, DataType::F64);
    ParamId p = b.pointerParam("p", m2);
    ParamId q = b.pointerParam("q", m2);
    b.paramProvenance(p, m2);
    b.paramProvenance(q, m2);
    OpId v = b.constant(1);
    AddrExpr ea = b.atParam(p, 0);
    ea.terms.push_back({b.rowStrideSym(m2), 0});
    ea.canonicalize();
    AddrExpr eb = b.atParam(q, 0);
    eb.terms.push_back({b.rowStrideSym(m2), 1});
    eb.canonicalize();
    b.store(ea, v, 8);
    b.load(eb, 8);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    ASSERT_EQ(m.relation(0, 1), PairRelation::May);
    runStage4(r, m);
    EXPECT_EQ(m.relation(0, 1), PairRelation::No);
}

TEST(Stage4, FlatObjectStrideNotSubstituted)
{
    // A DimStride symbol attached to an object without a declared
    // shape must not be substituted (no delinearization evidence).
    RegionBuilder b;
    ObjectId flat = b.object("flat", 1 << 16);
    Symbol stride;
    stride.kind = SymKind::DimStride;
    stride.object = flat;
    stride.strideBytes = 512;
    // Insert the symbol manually through a 2-D-less path.
    RegionBuilder b2; // unused; keep single-builder flow below
    (void)b2;
    OpId v = b.constant(1);
    AddrExpr ea = b.at(flat, 0);
    AddrExpr eb = b.at(flat, 0);
    // Manually register the symbol on the region via builder internals
    // is not exposed; emulate with object2d on a *different* object and
    // reuse its stride symbol on `flat` accesses.
    ObjectId shaped = b.object2d("shaped", 8, 64);
    SymbolId sid = b.rowStrideSym(shaped);
    ea.terms.push_back({sid, 1});
    ea.canonicalize();
    b.store(ea, v, 8);
    b.load(eb, 8);
    Region r = b.build();

    AliasMatrix m = runStage1(r);
    ASSERT_EQ(m.relation(0, 1), PairRelation::May);
    Stage4Stats s = runStage4(r, m);
    // Stride symbol belongs to `shaped`, not to the base object
    // `flat`: substitution must be refused.
    EXPECT_EQ(s.toNo + s.toMust, 0u);
    EXPECT_EQ(m.relation(0, 1), PairRelation::May);
}

} // namespace
} // namespace nachos
