#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "ir/builder.hh"
#include "support/random.hh"

namespace nachos {
namespace {

/** A mixed region exercising all four stages. */
Region
mixedRegion()
{
    RegionBuilder b("mixed");
    ObjectId a = b.object("A", 1 << 16);
    ObjectId c = b.object("C", 1 << 16);
    ObjectId m2 = b.object2d("M", 64, 64, DataType::F64);
    ParamId p = b.pointerParam("p", a);
    ParamId q = b.pointerParam("q", c);
    b.paramProvenance(p, a);
    b.paramProvenance(q, c);

    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);              // 0: A[0]
    b.load(b.at(a, 0));                  // 1: A[0]   MUST(0,1) fwd
    b.store(b.atParam(p, 128), v);       // 2: p->A   stage2 NO vs q
    b.load(b.atParam(q, 128));           // 3: q->C
    b.store(b.at2d(m2, 0, 1), v, 8);     // 4: M[0][1] stage4
    b.load(b.at2d(m2, 1, 1), 8);         // 5: M[1][1] stage4
    return b.build();
}

TEST(Pipeline, FullPipelineResolvesEverything)
{
    Region r = mixedRegion();
    AliasAnalysisResult res = runAliasPipeline(r);

    // Stage 1 leaves several MAYs.
    EXPECT_GT(res.afterStage1.all.may, 0u);
    // Stage 2 resolves the param pair.
    EXPECT_GT(res.stage2.toNo, 0u);
    // Stage 4 resolves the 2-D pairs.
    EXPECT_GT(res.stage4.toNo, 0u);
    // Finally no MAY remains in this fully-analyzable region.
    EXPECT_EQ(res.final().all.may, 0u);
}

TEST(Pipeline, BaselineCompilerSkipsStages2And4)
{
    Region r = mixedRegion();
    AliasAnalysisResult res =
        runAliasPipeline(r, PipelineConfig::baselineCompiler());
    EXPECT_EQ(res.stage2.examined, 0u);
    EXPECT_EQ(res.stage4.examined, 0u);
    // MAYs persist without the advanced stages.
    EXPECT_GT(res.final().all.may, 0u);
}

TEST(Pipeline, Stage3OffEnforcesEverything)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId ld = b.load(b.at(a, 0));
    OpId x = b.iadd(ld, ld);
    b.store(b.at(a, 0), x);
    Region r = b.build();

    PipelineConfig cfg;
    cfg.stage3 = false;
    AliasAnalysisResult res = runAliasPipeline(r, cfg);
    EXPECT_TRUE(res.matrix.enforced(0, 1));

    AliasAnalysisResult res2 = runAliasPipeline(r);
    EXPECT_FALSE(res2.matrix.enforced(0, 1));
}

TEST(Pipeline, SnapshotsAreMonotoneInMay)
{
    Region r = mixedRegion();
    AliasAnalysisResult res = runAliasPipeline(r);
    EXPECT_LE(res.afterStage2.all.may, res.afterStage1.all.may);
    EXPECT_LE(res.afterStage4.all.may, res.afterStage3.all.may);
}

TEST(Pipeline, SoundnessNoViolationsOnMixedRegion)
{
    Region r = mixedRegion();
    AliasAnalysisResult res = runAliasPipeline(r);
    EXPECT_EQ(countSoundnessViolations(r, res.matrix, 64), 0u);
}

/**
 * Property sweep: random regions with varied address patterns must
 * never produce an unsound NO label at any stage configuration.
 */
class PipelineSoundness : public ::testing::TestWithParam<uint64_t>
{};

Region
randomRegion(uint64_t seed)
{
    Rng rng(seed);
    RegionBuilder b("rand" + std::to_string(seed));
    const int n_objects = static_cast<int>(rng.range(1, 4));
    std::vector<ObjectId> objs;
    for (int i = 0; i < n_objects; ++i)
        objs.push_back(
            b.object("o" + std::to_string(i), 1 << 14));
    ObjectId m2 = b.object2d("m2", 32, 16, DataType::F64);
    std::vector<ParamId> params;
    for (int i = 0; i < 2; ++i) {
        ObjectId target = objs[rng.below(objs.size())];
        ParamId p =
            b.pointerParam("p" + std::to_string(i), target,
                           rng.range(0, 16) * 8);
        if (rng.chance(0.5))
            b.paramProvenance(p, target,
                              b.peek().param(p).actualOffset);
        params.push_back(p);
    }

    OpId v = b.constant(7);
    OpId idx_load = b.load(b.at(objs[0], 0));
    SymbolId osym = b.opaqueSym("i", idx_load, 64, 8, 0, seed);

    const int n_mem = static_cast<int>(rng.range(4, 14));
    for (int i = 0; i < n_mem; ++i) {
        AddrExpr e;
        switch (rng.below(5)) {
          case 0:
            e = b.at(objs[rng.below(objs.size())],
                     rng.range(0, 32) * 8);
            break;
          case 1:
            e = b.stream(objs[rng.below(objs.size())],
                         rng.range(0, 4) * 8, rng.range(0, 16) * 8);
            break;
          case 2:
            e = b.atParam(params[rng.below(params.size())],
                          rng.range(0, 32) * 8);
            break;
          case 3:
            e = b.at2d(m2, rng.range(0, 8), rng.range(0, 15));
            break;
          default:
            e = b.at(objs[rng.below(objs.size())], 0);
            e.terms.push_back({osym, 1});
            e.canonicalize();
            break;
        }
        if (rng.chance(0.5))
            b.store(e, v, 8);
        else
            b.load(e, 8);
    }
    return b.build();
}

TEST_P(PipelineSoundness, NoLabelNeverOverlapsDynamically)
{
    Region r = randomRegion(GetParam());
    for (bool s2 : {false, true}) {
        for (bool s4 : {false, true}) {
            PipelineConfig cfg;
            cfg.stage2 = s2;
            cfg.stage4 = s4;
            AliasAnalysisResult res = runAliasPipeline(r, cfg);
            EXPECT_EQ(countSoundnessViolations(r, res.matrix, 48), 0u)
                << "seed=" << GetParam() << " s2=" << s2
                << " s4=" << s4;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomRegions, PipelineSoundness,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

} // namespace
} // namespace nachos
