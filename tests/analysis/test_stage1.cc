#include <gtest/gtest.h>

#include "analysis/stage1_basic.hh"
#include "ir/builder.hh"

namespace nachos {
namespace {

/** Classify the first two disambiguated memory ops of a region. */
PairRelation
classifyFirstPair(const Region &r, ClassifyOptions opts = {})
{
    const auto &mem = r.memOps();
    EXPECT_GE(mem.size(), 2u);
    return classifyPair(r, mem[0], mem[1], opts);
}

TEST(Stage1, DistinctObjectsNoAlias)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);
    b.store(b.at(c, 0), v);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::No);
}

TEST(Stage1, SameObjectSameOffsetMustExact)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 64), v);
    b.load(b.at(a, 64));
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::MustExact);
}

TEST(Stage1, SameObjectDisjointOffsetsNo)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v, 8);
    b.load(b.at(a, 8), 8);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::No);
}

TEST(Stage1, PartialOverlapMustPartial)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v, 8);
    b.load(b.at(a, 4), 8);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::MustPartial);
}

TEST(Stage1, SameOffsetDifferentSizeMustPartial)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v, 8);
    b.load(b.at(a, 0), 4);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::MustPartial);
}

TEST(Stage1, StridedStreamsInterleavedNoAlias)
{
    // a[2t] vs a[2t+1] (8-byte elements, stride 16): never overlap.
    RegionBuilder b;
    ObjectId a = b.object("A", 1 << 20);
    OpId v = b.constant(1);
    b.store(b.stream(a, 16, 0), v, 8);
    b.load(b.stream(a, 16, 8), 8);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::No);
}

TEST(Stage1, DifferentStridesMayCollide)
{
    // a[8t] vs a[12t + 24]: collide at t = 6 (48+... actually
    // 8t = 12t+24 has no t >= 0 solution, but overlap windows do:
    // t such that 8t - 12t - 24 in (-8, 8) => -4t in (16, 32) => none.
    // Use offsets that do collide: a[8t] vs a[4t + 16] at t=4.
    RegionBuilder b;
    ObjectId a = b.object("A", 1 << 20);
    OpId v = b.constant(1);
    b.store(b.stream(a, 8, 0), v, 8);
    b.load(b.stream(a, 4, 16), 8);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::May);
}

TEST(Stage1, RecurrenceDivergingNeverOverlaps)
{
    // diff(t) = 8t + 8, always >= 8: no overlap for 8-byte accesses.
    RegionBuilder b;
    ObjectId a = b.object("A", 1 << 20);
    OpId v = b.constant(1);
    b.store(b.stream(a, 16, 8), v, 8);
    b.load(b.stream(a, 8, 0), 8);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::No);
}

TEST(Stage1, RecurrenceNegativeStepMayOverlapLater)
{
    // diff(t) = -8t + 32: at t=4 diff=0 -> overlap possible.
    RegionBuilder b;
    ObjectId a = b.object("A", 1 << 20);
    OpId v = b.constant(1);
    b.store(b.stream(a, 0, 32), v, 8); // constant addr a+32
    b.load(b.stream(a, 8, 0), 8);      // a + 8t
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::May);
}

TEST(Stage1, SymbolicRowStrideIsMay)
{
    // A[0][0] vs A[1][0]: row stride symbolic at stage 1.
    RegionBuilder b;
    ObjectId m = b.object2d("M", 64, 64);
    OpId v = b.constant(1);
    b.store(b.at2d(m, 0, 0), v, 8);
    b.load(b.at2d(m, 1, 0), 8);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::May);
}

TEST(Stage1, OpaqueIndexIsMay)
{
    RegionBuilder b;
    ObjectId idx = b.object("idx", 4096);
    ObjectId a = b.object("A", 1 << 16);
    OpId il = b.load(b.at(idx, 0));
    SymbolId s = b.opaqueSym("i", il, 512, 8);
    AddrExpr gather = b.at(a, 0);
    gather.terms.push_back({s, 1});
    OpId v = b.constant(1);
    b.store(gather, v, 8);
    b.load(b.at(a, 64), 8);
    Region r = b.build();
    const auto &mem = r.memOps();
    // gather store (mem[1]) vs direct load (mem[2]): same object,
    // opaque term -> May.
    EXPECT_EQ(classifyPair(r, mem[1], mem[2], {}), PairRelation::May);
}

TEST(Stage1, UnknownParamsMayAliasEachOther)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    ParamId p = b.pointerParam("p", a);
    ParamId q = b.pointerParam("q", c);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v);
    b.load(b.atParam(q, 0));
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::May);
}

TEST(Stage1, SameParamConstantOffsetsResolved)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v, 8);
    b.load(b.atParam(p, 8), 8);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::No);

    RegionBuilder b2;
    ObjectId a2 = b2.object("A", 4096);
    ParamId p2 = b2.pointerParam("p", a2);
    OpId v2 = b2.constant(1);
    b2.store(b2.atParam(p2, 16), v2, 8);
    b2.load(b2.atParam(p2, 16), 8);
    Region r2 = b2.build();
    EXPECT_EQ(classifyFirstPair(r2), PairRelation::MustExact);
}

TEST(Stage1, NonEscapingObjectShieldedFromParam)
{
    RegionBuilder b;
    ObjectId priv = b.object("priv", 4096, ObjectKind::Heap,
                             DataType::I64, /*escapes=*/false);
    ObjectId pub = b.object("pub", 4096);
    ParamId p = b.pointerParam("p", pub);
    OpId v = b.constant(1);
    b.store(b.at(priv, 0), v);
    b.load(b.atParam(p, 0));
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::No);
}

TEST(Stage1, EscapingObjectMayAliasParam)
{
    RegionBuilder b;
    ObjectId glob = b.object("glob", 4096); // escapes by default
    ParamId p = b.pointerParam("p", glob);
    OpId v = b.constant(1);
    b.store(b.at(glob, 0), v);
    b.load(b.atParam(p, 0));
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::May);
}

TEST(Stage1, TbaaSeparatesTypesWhenStrict)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a);
    ParamId q = b.pointerParam("q", a);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v, 8);
    b.load(b.atParam(q, 0), 4, {}, DataType::F32);
    Region r = b.build();
    // Not strict: params may alias.
    EXPECT_EQ(classifyFirstPair(r), PairRelation::May);
    r.setStrictAliasing(true);
    // Store dtype is I64 (default), load is F32 -> disjoint.
    EXPECT_EQ(classifyFirstPair(r), PairRelation::No);
}

TEST(Stage1, SameOpaqueBaseResolvesOffsets)
{
    RegionBuilder b;
    ObjectId heap = b.object("heap", 1 << 16);
    OpId pl = b.load(b.at(heap, 0), 8, {}, DataType::Ptr);
    SymbolId s = b.opaqueSym("node", pl, 256, 64);
    OpId v = b.constant(1);
    b.store(b.opaque(s, 0), v, 8); // node->a
    b.load(b.opaque(s, 8), 8);     // node->b
    Region r = b.build();
    const auto &mem = r.memOps();
    EXPECT_EQ(classifyPair(r, mem[1], mem[2], {}), PairRelation::No);
}

TEST(Stage1, DifferentOpaqueBasesMay)
{
    RegionBuilder b;
    ObjectId heap = b.object("heap", 1 << 16);
    OpId p1 = b.load(b.at(heap, 0), 8, {}, DataType::Ptr);
    OpId p2 = b.load(b.at(heap, 8), 8, {}, DataType::Ptr);
    SymbolId s1 = b.opaqueSym("n1", p1, 256, 64, 0, 11);
    SymbolId s2 = b.opaqueSym("n2", p2, 256, 64, 0, 22);
    OpId v = b.constant(1);
    b.store(b.opaque(s1, 0), v);
    b.load(b.opaque(s2, 0));
    Region r = b.build();
    const auto &mem = r.memOps();
    EXPECT_EQ(classifyPair(r, mem[2], mem[3], {}), PairRelation::May);
}

TEST(Stage1, RestrictParamNoAliasesOtherBases)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    ParamId p = b.pointerParam("p", a);
    ParamId q = b.pointerParam("q", c);
    b.paramRestrict(p);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v);   // 0
    b.load(b.atParam(q, 0));       // 1: restrict separates p from q
    b.load(b.at(c, 0));            // 2: ...and from other objects
    Region r = b.build();
    const auto &mem = r.memOps();
    EXPECT_EQ(classifyPair(r, mem[0], mem[1], {}), PairRelation::No);
    EXPECT_EQ(classifyPair(r, mem[0], mem[2], {}), PairRelation::No);
}

TEST(Stage1, RestrictParamStillComparesAgainstItself)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ParamId p = b.pointerParam("p", a);
    b.paramRestrict(p);
    OpId v = b.constant(1);
    b.store(b.atParam(p, 0), v, 8);
    b.load(b.atParam(p, 0), 8);
    Region r = b.build();
    EXPECT_EQ(classifyFirstPair(r), PairRelation::MustExact);
}

TEST(Stage1, RunStage1FillsWholeMatrix)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    ObjectId c = b.object("C", 4096);
    OpId v = b.constant(1);
    b.store(b.at(a, 0), v);
    b.load(b.at(a, 0));
    b.load(b.at(c, 0));
    Region r = b.build();
    AliasMatrix m = runStage1(r);
    EXPECT_EQ(m.numMemOps(), 3u);
    EXPECT_EQ(m.relation(0, 1), PairRelation::MustExact);
    EXPECT_EQ(m.relation(0, 2), PairRelation::No);
    // load-load pair classified but not relevant
    EXPECT_FALSE(m.relevant(1, 2));
}

TEST(Stage1, CountsIgnoreLoadLoadPairs)
{
    RegionBuilder b;
    ObjectId a = b.object("A", 4096);
    b.load(b.at(a, 0));
    b.load(b.at(a, 0));
    b.load(b.at(a, 8));
    Region r = b.build();
    AliasMatrix m = runStage1(r);
    PairCounts c = m.counts();
    EXPECT_EQ(c.total(), 0u); // no stores at all
}

} // namespace
} // namespace nachos
