/**
 * @file
 * Region tooling: save any suite workload's region in the textual
 * nachos-region format, reload it, and/or emit GraphViz DOT of its
 * dataflow graph with the inserted memory-dependence edges.
 *
 *   $ ./region_tool save parser parser.region
 *   $ ./region_tool dot parser parser.dot     # includes MDEs
 *   $ ./region_tool check parser.region       # reload + re-verify
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/pipeline.hh"
#include "harness/golden.hh"
#include "ir/serialize.hh"
#include "mde/inserter.hh"
#include "support/logging.hh"
#include "workloads/suite.hh"

using namespace nachos;

int
main(int argc, char **argv)
{
    setQuiet(true);
    if (argc < 3) {
        std::cout << "usage:\n"
                     "  region_tool save <workload> <file>\n"
                     "  region_tool dot <workload> <file>\n"
                     "  region_tool check <file>\n";
        return 0;
    }
    const std::string cmd = argv[1];

    if (cmd == "save") {
        if (argc < 4)
            NACHOS_FATAL("save needs <workload> <file>");
        Region r = synthesizeRegion(benchmarkByName(argv[2]));
        std::ofstream out(argv[3]);
        if (!out)
            NACHOS_FATAL("cannot write ", argv[3]);
        writeRegion(r, out);
        std::cout << "wrote " << r.numOps() << " ops to " << argv[3]
                  << "\n";
        return 0;
    }
    if (cmd == "dot") {
        if (argc < 4)
            NACHOS_FATAL("dot needs <workload> <file>");
        Region r = synthesizeRegion(benchmarkByName(argv[2]));
        AliasAnalysisResult res = runAliasPipeline(r);
        MdeSet mdes = insertMdes(r, res.matrix);
        std::ofstream out(argv[3]);
        if (!out)
            NACHOS_FATAL("cannot write ", argv[3]);
        dumpDotWithMdes(r, mdes, out);
        std::cout << "wrote DOT (" << mdes.size() << " MDEs) to "
                  << argv[3] << "\n";
        return 0;
    }
    if (cmd == "check") {
        std::ifstream in(argv[2]);
        if (!in)
            NACHOS_FATAL("cannot read ", argv[2]);
        Region r = readRegion(in);
        AliasAnalysisResult res = runAliasPipeline(r);
        const uint64_t violations =
            countSoundnessViolations(r, res.matrix, 32);
        GoldenResult golden = goldenExecute(r, 4);
        std::cout << "region " << r.name() << ": " << r.numOps()
                  << " ops, " << r.numMemOps() << " mem ops, "
                  << res.final().all.may << " MAY pairs, "
                  << violations << " soundness violations, digest "
                  << golden.loadValueDigest << "\n";
        return violations == 0 ? 0 : 1;
    }
    NACHOS_FATAL("unknown command '", cmd, "'");
}
