/**
 * @file
 * Quickstart: build a small offload region with the RegionBuilder, run
 * the four-stage alias pipeline, inspect the labels and the inserted
 * MDEs, then simulate it under OPT-LSQ, NACHOS-SW and NACHOS.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "energy/model.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"
#include "support/table.hh"

using namespace nachos;

int
main()
{
    // ---- 1. Build an offload region --------------------------------------
    // for (t) { sum = A[t] + B[t]; *p += sum; C[t] = sum; }
    // `p` is a pointer parameter the compiler cannot resolve locally.
    RegionBuilder b("quickstart");
    ObjectId array_a = b.object("A", 1 << 16);
    ObjectId array_b = b.object("B", 1 << 16);
    ObjectId array_c = b.object("C", 1 << 16);
    ParamId p = b.pointerParam("p", array_c, 8); // truly points into C
    b.paramProvenance(p, array_c, 8); // ...and Stage 2 can prove it

    OpId lda = b.load(b.stream(array_a, 8));
    OpId ldb = b.load(b.stream(array_b, 8));
    OpId sum = b.iadd(lda, ldb);
    OpId ldp = b.load(b.atParam(p, 0));
    OpId acc = b.iadd(ldp, sum);
    b.store(b.atParam(p, 0), acc);     // *p += sum
    b.store(b.stream(array_c, 8), sum); // C[t] = sum (MAY alias *p?)
    b.liveOut(acc);
    Region region = b.build();

    std::cout << "Region '" << region.name() << "': "
              << region.numOps() << " ops, " << region.numMemOps()
              << " memory ops\n\n";

    // ---- 2. Alias analysis ------------------------------------------------
    AliasAnalysisResult analysis = runAliasPipeline(region);
    const AliasMatrix &m = analysis.matrix;
    std::cout << "Pairwise labels (memIndex pairs):\n";
    for (uint32_t i = 0; i < m.numMemOps(); ++i) {
        for (uint32_t j = i + 1; j < m.numMemOps(); ++j) {
            if (!m.relevant(i, j))
                continue;
            std::cout << "  (" << i << "," << j << ") "
                      << pairRelationName(m.relation(i, j))
                      << (m.enforced(i, j) ? "  [MDE]" : "")
                      << "\n";
        }
    }

    // ---- 3. MDE insertion ---------------------------------------------------
    MdeSet mdes = insertMdes(region, m);
    MdeCounts counts = mdes.counts();
    std::cout << "\nMDEs: " << counts.order << " ORDER, "
              << counts.forward << " FORWARD, " << counts.may
              << " MAY\n\n";

    // ---- 4. Simulate under all three schemes -------------------------------
    SimConfig cfg;
    cfg.invocations = 200;
    TextTable table;
    table.header({"scheme", "cycles", "cyc/inv", "maxMLP",
                  "energy (nJ)", "MDE share"});
    for (BackendKind kind : {BackendKind::OptLsq, BackendKind::NachosSw,
                             BackendKind::Nachos}) {
        SimResult res = simulate(region, mdes, kind, cfg);
        table.row({backendName(kind), std::to_string(res.cycles),
                   fmtDouble(res.cyclesPerInvocation, 1),
                   std::to_string(res.maxMlp),
                   fmtDouble(res.energy.total() / 1e6, 2),
                   fmtPct(res.energy.frac(res.energy.mde))});
    }
    table.print(std::cout);
    std::cout << "\nNACHOS checks the MAY pairs at run time and "
                 "recovers the parallelism\nNACHOS-SW serializes; "
                 "OPT-LSQ finds it too but pays CAM energy on every "
                 "access.\n";
    return 0;
}
