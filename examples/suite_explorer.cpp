/**
 * @file
 * Suite explorer: run any of the 27 paper workloads (or all of them)
 * through the full flow — synthesis, alias pipeline, MDE insertion,
 * and simulation under all three ordering schemes — and print a
 * one-screen report.
 *
 *   $ ./suite_explorer                    # list workloads
 *   $ ./suite_explorer equake             # run one
 *   $ ./suite_explorer equake --stats     # + full event-counter dump
 *   $ ./suite_explorer equake trace.json  # + Chrome trace of NACHOS run
 *   $ ./suite_explorer --all              # run everything (slow-ish)
 */

#include <cstring>
#include <iostream>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/suite_runner.hh"
#include "support/logging.hh"
#include "support/table.hh"

using namespace nachos;

namespace {

void
reportOutcome(const BenchmarkInfo &info, const RunOutcome &out,
              const char *trace_file = nullptr);

void
report(const BenchmarkInfo &info, const char *trace_file = nullptr)
{
    RunOutcome out = runWorkload(info);
    reportOutcome(info, out, trace_file);
}

void
reportOutcome(const BenchmarkInfo &info, const RunOutcome &out,
              const char *trace_file)
{
    if (trace_file != nullptr &&
        std::strcmp(trace_file, "--stats") != 0) {
        // Re-run NACHOS with tracing on.
        SimConfig cfg;
        cfg.invocations = 4;
        cfg.traceFile = trace_file;
        simulate(out.region, out.mdes, BackendKind::Nachos, cfg);
        std::cout << "trace written to " << trace_file
                  << " (open in chrome://tracing)\n";
    }
    std::cout << "\n== " << info.name << " ("
              << suiteName(info.suite) << ") ==\n";
    std::cout << "region: " << out.region.numOps() << " ops, "
              << out.region.numMemOps() << " mem ops, "
              << out.region.numScratchpadOps() << " scratchpad ops\n";

    const auto &a = out.analysis;
    std::cout << "alias:  stage1 MAY " << a.afterStage1.all.may
              << " -> stage2 " << a.afterStage2.all.may
              << " -> stage4 " << a.afterStage4.all.may
              << "  (MDEs: " << out.mdes.counts().total() << ")\n";

    TextTable table;
    table.header({"scheme", "cyc/inv", "maxMLP", "energy(nJ)",
                  "vs LSQ"});
    const double base = static_cast<double>(out.lsq->cycles);
    auto row = [&](const char *name, const SimResult &res) {
        table.row({name, fmtDouble(res.cyclesPerInvocation, 1),
                   std::to_string(res.maxMlp),
                   fmtDouble(res.energy.total() / 1e6, 2),
                   fmtDouble(pctDelta(base,
                                      static_cast<double>(res.cycles)),
                             1) +
                       "%"});
    };
    row("OPT-LSQ", *out.lsq);
    row("NACHOS-SW", *out.sw);
    row("NACHOS", *out.nachos);
    table.print(std::cout);

    if (trace_file != nullptr &&
        std::strcmp(trace_file, "--stats") == 0) {
        std::cout << "\nNACHOS event counters:\n";
        printStats(std::cout, out.nachos->stats);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    if (argc < 2) {
        std::cout << "usage: suite_explorer <workload> [trace.json]\n"
                     "       suite_explorer --all [--threads N]\n\n"
                     "workloads:\n";
        for (const BenchmarkInfo &info : benchmarkSuite())
            std::cout << "  " << info.shortName << "  (" << info.name
                      << ")\n";
        return 0;
    }
    if (std::strcmp(argv[1], "--all") == 0) {
        // Parallel fan-out; reports print in suite order regardless.
        SuiteRun run = runSuite(benchmarkSuite(), RunRequest{},
                                suiteThreads(argc, argv));
        for (size_t i = 0; i < run.outcomes.size(); ++i)
            reportOutcome(benchmarkSuite()[i], run.outcomes[i]);
        printSuiteTiming(std::cerr, run);
        return 0;
    }
    report(benchmarkByName(argv[1]), argc > 2 ? argv[2] : nullptr);
    return 0;
}
