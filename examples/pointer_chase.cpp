/**
 * @file
 * Irregular scenario (the paper's bzip2/soplex motivation): scatter
 * and gather through data-dependent indices the compiler can never
 * disambiguate. NACHOS-SW serializes every MAY pair; NACHOS's
 * comparator stations verify them at run time and recover the
 * parallelism — unless the accesses truly conflict, in which case the
 * hardware enforces the order (checked against OPT-LSQ's values).
 *
 *   $ ./pointer_chase
 */

#include <iostream>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"
#include "support/table.hh"

using namespace nachos;

namespace {

Region
buildGatherScatter(uint64_t table_slots)
{
    RegionBuilder b("chase" + std::to_string(table_slots));
    ObjectId idx = b.object("indices", 1 << 16);
    ObjectId tab = b.object("table", table_slots * 8 + 64);

    OpId idx_load = b.load(b.stream(idx, 8));
    OpId v = b.liveIn();

    // Eight scatter/gather ops through distinct data-dependent
    // indices over the same table: all pairs are MAY.
    for (int k = 0; k < 8; ++k) {
        SymbolId sym = b.opaqueSym("i" + std::to_string(k), idx_load,
                                   table_slots, 8, 0, 100 + k);
        AddrExpr addr = b.at(tab, 0);
        addr.terms.push_back({sym, 1});
        addr.canonicalize();
        if (k % 2 == 0)
            b.store(addr, v, 8);
        else
            b.load(addr, 8);
    }
    return b.build();
}

void
runScenario(const char *label, uint64_t slots)
{
    Region region = buildGatherScatter(slots);
    AliasAnalysisResult analysis = runAliasPipeline(region);
    MdeSet mdes = insertMdes(region, analysis.matrix);

    std::cout << label << " (" << slots
              << " table slots): " << analysis.final().all.may
              << " MAY pairs, " << mdes.counts().may
              << " MAY edges\n";

    SimConfig cfg;
    cfg.invocations = 400;
    TextTable table;
    table.header({"scheme", "cyc/inv", "checks clear", "conflicts"});
    SimResult lsq, sw, hw;
    for (BackendKind kind : {BackendKind::OptLsq, BackendKind::NachosSw,
                             BackendKind::Nachos}) {
        SimResult res = simulate(region, mdes, kind, cfg);
        table.row(
            {backendName(kind), fmtDouble(res.cyclesPerInvocation, 1),
             std::to_string(res.stats.get("nachos.checksClear")),
             std::to_string(res.stats.get("nachos.checksConflict"))});
        if (kind == BackendKind::OptLsq)
            lsq = res;
        else if (kind == BackendKind::NachosSw)
            sw = res;
        else
            hw = res;
    }
    table.print(std::cout);
    if (lsq.loadValueDigest == hw.loadValueDigest &&
        lsq.memImage == hw.memImage) {
        std::cout << "  functional state identical across schemes "
                     "(ordering preserved)\n\n";
    } else {
        std::cout << "  ERROR: backends diverged!\n\n";
        std::exit(1);
    }
}

} // namespace

int
main()
{
    // Sparse table: dynamic conflicts are rare — NACHOS parallelizes
    // nearly everything NACHOS-SW serializes.
    runScenario("Sparse indices", 4096);
    // Dense table: real conflicts happen every few invocations — the
    // comparator stations catch and order them.
    runScenario("Dense indices", 16);
    return 0;
}
