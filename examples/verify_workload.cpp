/**
 * @file
 * Verification tool: run the repository's two anchor invariants on any
 * suite workload (or all of them) and report verdicts —
 *
 *  1. label soundness: NO-labeled pairs never overlap dynamically;
 *  2. golden equivalence: every ordering backend reproduces a strict
 *     program-order execution's load values and memory image.
 *
 *   $ ./verify_workload bzip2
 *   $ ./verify_workload --all
 */

#include <cstring>
#include <iostream>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "harness/golden.hh"
#include "mde/inserter.hh"
#include "support/logging.hh"
#include "workloads/suite.hh"

using namespace nachos;

namespace {

bool
verify(const BenchmarkInfo &info)
{
    bool ok = true;
    for (uint32_t path = 0; path < 5; ++path) {
        SynthesisOptions opts;
        opts.pathIndex = path;
        Region r = synthesizeRegion(info, opts);
        AliasAnalysisResult res = runAliasPipeline(r);

        const uint64_t violations =
            countSoundnessViolations(r, res.matrix, 32);
        if (violations != 0) {
            std::cout << "  [FAIL] " << r.name() << ": " << violations
                      << " unsound NO labels\n";
            ok = false;
            continue;
        }

        MdeSet mdes = insertMdes(r, res.matrix);
        GoldenResult golden = goldenExecute(r, 6);
        SimConfig cfg;
        cfg.invocations = 6;
        for (BackendKind kind :
             {BackendKind::OptLsq, BackendKind::NachosSw,
              BackendKind::Nachos}) {
            SimResult sim = simulate(r, mdes, kind, cfg);
            if (sim.loadValueDigest != golden.loadValueDigest ||
                sim.memImage != golden.memImage) {
                std::cout << "  [FAIL] " << r.name() << " under "
                          << backendName(kind)
                          << ": diverged from program order\n";
                ok = false;
            }
        }
    }
    std::cout << (ok ? "  [ OK ] " : "  [FAIL] ") << info.name
              << " (5 paths x 3 backends + soundness)\n";
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    if (argc < 2) {
        std::cout << "usage: verify_workload <workload>|--all\n";
        return 0;
    }
    bool all_ok = true;
    if (std::strcmp(argv[1], "--all") == 0) {
        for (const BenchmarkInfo &info : benchmarkSuite())
            all_ok &= verify(info);
    } else {
        all_ok = verify(benchmarkByName(argv[1]));
    }
    std::cout << (all_ok ? "\nall checks passed\n"
                         : "\nCHECKS FAILED\n");
    return all_ok ? 0 : 1;
}
