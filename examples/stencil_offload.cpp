/**
 * @file
 * Stencil scenario (the paper's equake/lbm motivation): a 2-D sweep
 * whose multidimensional accesses defeat the standard alias stages but
 * are fully disambiguated by the Stage-4 polyhedral analysis. Shows
 * the performance cliff the baseline compiler (stages 1+3) falls off,
 * and how Stage 4 restores OPT-LSQ-level performance without any LSQ.
 *
 *   $ ./stencil_offload
 */

#include <iostream>

#include "analysis/pipeline.hh"
#include "cgra/simulator.hh"
#include "ir/builder.hh"
#include "mde/inserter.hh"
#include "support/table.hh"

using namespace nachos;

namespace {

/** w[r][c] += A[r][c]*v[r-1][c] + A[r][c+1]*v[r+1][c] over 8 rows. */
Region
buildStencil()
{
    RegionBuilder b("stencil");
    ObjectId w = b.object2d("w", 64, 16, DataType::F64);
    ObjectId a = b.object2d("A", 64, 16, DataType::F64);
    ObjectId v = b.object2d("v", 64, 16, DataType::F64);

    for (int r = 1; r < 9; ++r) {
        OpId a0 = b.load(b.at2d(a, r, 3, 8), 8, {}, DataType::F64);
        OpId a1 = b.load(b.at2d(a, r, 4, 8), 8, {}, DataType::F64);
        OpId v0 = b.load(b.at2d(v, r - 1, 3, 8), 8, {}, DataType::F64);
        OpId v1 = b.load(b.at2d(v, r + 1, 3, 8), 8, {}, DataType::F64);
        OpId w0 = b.load(b.at2d(w, r, 3, 8), 8, {}, DataType::F64);
        OpId m0 = b.fmul(a0, v0);
        OpId m1 = b.fmul(a1, v1);
        OpId s = b.fadd(m0, m1);
        OpId upd = b.fadd(w0, s);
        b.store(b.at2d(w, r, 3, 8), upd, 8);
    }
    return b.build();
}

} // namespace

int
main()
{
    Region region = buildStencil();
    std::cout << "Stencil region: " << region.numOps() << " ops, "
              << region.numMemOps() << " memory ops\n\n";

    // The baseline compiler cannot see through the symbolic row
    // strides; Polly-style Stage 4 proves every row disjoint.
    AliasAnalysisResult baseline = runAliasPipeline(
        region, PipelineConfig::baselineCompiler());
    AliasAnalysisResult full = runAliasPipeline(region);
    std::cout << "MAY pairs, baseline compiler (stages 1+3): "
              << baseline.final().all.may << "\n"
              << "MAY pairs, full pipeline (with Stage 4):   "
              << full.final().all.may << "\n\n";

    SimConfig cfg;
    cfg.invocations = 300;
    TextTable table;
    table.header({"configuration", "cycles", "cyc/inv"});
    struct Case
    {
        const char *name;
        const AliasAnalysisResult *analysis;
        BackendKind kind;
    };
    const Case cases[] = {
        {"OPT-LSQ", &full, BackendKind::OptLsq},
        {"NACHOS-SW, baseline compiler", &baseline,
         BackendKind::NachosSw},
        {"NACHOS,    baseline compiler", &baseline,
         BackendKind::Nachos},
        {"NACHOS-SW, full pipeline", &full, BackendKind::NachosSw},
    };
    for (const Case &c : cases) {
        MdeSet mdes = insertMdes(region, c.analysis->matrix);
        SimResult res = simulate(region, mdes, c.kind, cfg);
        table.row({c.name, std::to_string(res.cycles),
                   fmtDouble(res.cyclesPerInvocation, 1)});
    }
    table.print(std::cout);
    std::cout << "\nWith Stage 4 the software-only scheme needs no "
                 "MDEs at all: the region\nruns at full parallelism "
                 "with zero disambiguation hardware (paper §V-E).\n";
    return 0;
}
